package roofline

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// naiveBestPerNodeCountsFloor is an independent, deliberately simple
// reference for the pruned parallel search: plain recursion over
// per-app counts in the same order, every candidate evaluated with the
// reference model, first strict improvement wins. The fast search must
// return exactly this answer.
func naiveBestPerNodeCountsFloor(m *machine.Machine, apps []App, obj Objective, floor int) ([]int, *Result, error) {
	if obj == nil {
		obj = TotalGFLOPS
	}
	capCores := m.Nodes[0].Cores
	for _, n := range m.Nodes[1:] {
		if n.Cores < capCores {
			capCores = n.Cores
		}
	}
	if floor < 0 {
		floor = 0
	}
	counts := make([]int, len(apps))
	var bestCounts []int
	var bestRes *Result
	best := -1.0
	var rec func(pos, remaining int)
	rec = func(pos, remaining int) {
		if pos == len(apps) {
			al, err := PerNodeCounts(m, counts)
			if err != nil {
				return
			}
			res, err := Evaluate(m, apps, al)
			if err != nil {
				return
			}
			if s := obj(res); s > best {
				best = s
				bestCounts = append(bestCounts[:0], counts...)
				bestRes = res
			}
			return
		}
		for c := floor; c <= remaining; c++ {
			counts[pos] = c
			rec(pos+1, remaining-c)
		}
	}
	rec(0, capCores)
	if bestRes == nil {
		return nil, nil, ErrNoAllocation
	}
	return bestCounts, bestRes, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSearchMatchesNaive runs both searches and demands identical
// counts and bitwise-identical results (or the same error).
func checkSearchMatchesNaive(t *testing.T, label string, s *Search, m *machine.Machine, apps []App, obj Objective, floor int) {
	t.Helper()
	wantCounts, wantRes, wantErr := naiveBestPerNodeCountsFloor(m, apps, obj, floor)
	gotCounts, _, gotRes, gotErr := s.BestPerNodeCountsFloor(m, apps, obj, floor)
	if wantErr != nil || gotErr != nil {
		if !errors.Is(gotErr, ErrNoAllocation) || !errors.Is(wantErr, ErrNoAllocation) {
			t.Fatalf("%s: error mismatch: naive %v, search %v", label, wantErr, gotErr)
		}
		return
	}
	if !intsEqual(wantCounts, gotCounts) {
		t.Fatalf("%s: counts mismatch: naive %v (score %v), search %v (score %v)",
			label, wantCounts, wantRes.TotalGFLOPS, gotCounts, gotRes.TotalGFLOPS)
	}
	if d := diffResults(wantRes, gotRes); d != "" {
		t.Fatalf("%s: result mismatch: %s", label, d)
	}
}

// TestSearchMatchesNaivePaperFixtures pins the pruned search to the
// naive exhaustive scan on every paper fixture, with and without the
// no-starvation floor, under both the pruned (TotalGFLOPS, nil) and
// unpruned (MinAppGFLOPS) objectives.
func TestSearchMatchesNaivePaperFixtures(t *testing.T) {
	var s Search
	cases := []struct {
		name string
		m    *machine.Machine
		apps []App
	}{
		{"paper-model", machine.PaperModel(), paperApps()},
		{"paper-model-bad", machine.PaperModelNUMABad(), numaBadApps()},
		{"skylake", machine.SkylakeQuad(), tableIIIApps()},
		{"skylake-bad", machine.SkylakeQuad(), tableIIIBadApps()},
	}
	objs := []struct {
		name string
		obj  Objective
	}{
		{"total", TotalGFLOPS},
		{"nil", nil},
		{"min-app", MinAppGFLOPS},
		{"weighted", WeightedAppGFLOPS([]float64{3, 1, 1, 1})},
	}
	for _, c := range cases {
		for _, o := range objs {
			for _, floor := range []int{0, 1} {
				checkSearchMatchesNaive(t, fmt.Sprintf("%s/%s/floor=%d", c.name, o.name, floor),
					&s, c.m, c.apps, o.obj, floor)
			}
		}
	}
}

// TestSearchTableIOptimum re-checks the headline paper number through
// the fast path: under floor 1 on the model machine the optimum is the
// uneven split (1,1,1,5) at 254 GFLOPS.
func TestSearchTableIOptimum(t *testing.T) {
	var s Search
	counts, _, res, err := s.BestPerNodeCountsFloor(machine.PaperModel(), paperApps(), TotalGFLOPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(counts, []int{1, 1, 1, 5}) {
		t.Fatalf("optimum counts = %v, want [1 1 1 5]", counts)
	}
	almost(t, "table I optimum", res.TotalGFLOPS, 254, 1e-9)
}

// TestSearchMatchesNaiveRandomized fuzzes the equivalence over random
// machines and app mixes (NUMA-bad included), floors 0-2.
func TestSearchMatchesNaiveRandomized(t *testing.T) {
	var s Search
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := randomMachine(r)
		apps := randomApps(r, m)
		floor := r.Intn(3)
		var obj Objective
		switch r.Intn(3) {
		case 0:
			obj = TotalGFLOPS
		case 1:
			obj = nil
		default:
			obj = MinAppGFLOPS
		}
		checkSearchMatchesNaive(t, fmt.Sprintf("seed=%d", seed), &s, m, apps, obj, floor)
	}
}

// floorSearchRound is the fuzz limb behind the fleet placer's scoring
// path: a small random machine and a demand set with a guaranteed
// NUMA-bad app, solved under a no-starvation floor >= 1 (the
// BestPerNodeCountsFloor configuration fleetd scores every placement
// with) and checked against the naive exhaustive reference. Machines
// stay small (<= 3 nodes, <= 6 cores) so the naive recursion is cheap
// inside the fuzz loop.
func floorSearchRound(t *testing.T, r *rand.Rand) {
	t.Helper()
	nNodes := 2 + r.Intn(2)
	m := &machine.Machine{Name: "floor-rand"}
	for i := 0; i < nNodes; i++ {
		m.Nodes = append(m.Nodes, machine.Node{
			Cores:        2 + r.Intn(5),
			PeakGFLOPS:   1 + 10*r.Float64(),
			MemBandwidth: 4 + 40*r.Float64(),
		})
	}
	if r.Intn(2) == 0 {
		// Remote link limits make the NUMA-bad remote-first service
		// order actually bite.
		m.LinkBandwidth = make([][]float64, nNodes)
		for i := range m.LinkBandwidth {
			m.LinkBandwidth[i] = make([]float64, nNodes)
			for j := range m.LinkBandwidth[i] {
				if i != j {
					m.LinkBandwidth[i][j] = 1 + 20*r.Float64()
				}
			}
		}
	}
	nApps := 2 + r.Intn(2)
	apps := make([]App, nApps)
	for i := range apps {
		apps[i] = App{Name: fmt.Sprintf("fapp%d", i), AI: pow2(r.Float64()*8 - 4)}
	}
	bad := r.Intn(nApps)
	apps[bad].Placement = NUMABad
	apps[bad].HomeNode = machine.NodeID(r.Intn(nNodes))
	obj := Objective(TotalGFLOPS)
	if r.Intn(3) == 0 {
		obj = MinAppGFLOPS
	}
	floor := 1 + r.Intn(2)
	var s Search
	checkSearchMatchesNaive(t, fmt.Sprintf("floor=%d numa-bad=%d", floor, bad), &s, m, apps, obj, floor)
}

// TestSearchParallelDeterministic forces the parallel fan-out path
// (C(16,8) = 12870 leaves, over the sequential threshold) and checks it
// is (a) equal to the naive scan and (b) stable across repeated runs
// and worker counts.
func TestSearchParallelDeterministic(t *testing.T) {
	m := machine.Uniform("wide", 4, 16, 10, 32, 0)
	apps := []App{
		{Name: "s0", AI: 0.5}, {Name: "s1", AI: 0.5}, {Name: "s2", AI: 0.25},
		{Name: "c0", AI: 10}, {Name: "c1", AI: 8},
		{Name: "m0", AI: 1}, {Name: "m1", AI: 2},
		{Name: "b0", AI: 0.0625, Placement: NUMABad, HomeNode: 0},
	}
	if got := estimateLeaves(16-8, len(apps)); got <= seqLeafThreshold {
		t.Fatalf("fixture too small to force the parallel path: %d leaves", got)
	}
	wantCounts, wantRes, err := naiveBestPerNodeCountsFloor(m, apps, TotalGFLOPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 1, 3, 8} {
		s := Search{Parallelism: par}
		for run := 0; run < 2; run++ {
			gotCounts, _, gotRes, err := s.BestPerNodeCountsFloor(m, apps, TotalGFLOPS, 1)
			if err != nil {
				t.Fatalf("par=%d run=%d: %v", par, run, err)
			}
			if !intsEqual(wantCounts, gotCounts) {
				t.Fatalf("par=%d run=%d: counts = %v, want %v", par, run, gotCounts, wantCounts)
			}
			if d := diffResults(wantRes, gotRes); d != "" {
				t.Fatalf("par=%d run=%d: %s", par, run, d)
			}
		}
	}
}

// TestSearchNoAllocation covers the infeasible edges: floors that
// over-subscribe the smallest node, and invalid app specs.
func TestSearchNoAllocation(t *testing.T) {
	var s Search
	m := machine.PaperModel() // 8 cores per node
	apps := paperApps()       // 4 apps; floor 3 needs 12 cores per node
	if _, _, _, err := s.BestPerNodeCountsFloor(m, apps, TotalGFLOPS, 3); !errors.Is(err, ErrNoAllocation) {
		t.Errorf("over-subscribing floor: err = %v, want ErrNoAllocation", err)
	}
	bad := []App{{Name: "neg", AI: -2}}
	if _, _, _, err := s.BestPerNodeCountsFloor(m, bad, TotalGFLOPS, 0); !errors.Is(err, ErrNoAllocation) {
		t.Errorf("invalid app: err = %v, want ErrNoAllocation", err)
	}
}

// --- Satellite (c): hill-climb scan-resume keeps the optima. ---

// oldHillClimb is the pre-optimization hill climber: reference Evaluate
// per probe, and a full restart of the (i, j) sweep after every
// accepted move. Kept here as the behavioural baseline.
func oldHillClimb(m *machine.Machine, apps []App, al Allocation, obj Objective, maxIters int) (Allocation, *Result, float64, error) {
	res, err := Evaluate(m, apps, al)
	if err != nil {
		return Allocation{}, nil, 0, err
	}
	score := obj(res)
	nApps, nNodes := len(apps), m.NumNodes()
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for i := 0; i < nApps && !improved; i++ {
			for j := 0; j < nNodes && !improved; j++ {
				if al.Threads[i][j] == 0 {
					continue
				}
				for k := 0; k < nNodes && !improved; k++ {
					if k == j || al.NodeThreads(machine.NodeID(k)) >= m.Nodes[k].Cores {
						continue
					}
					al.Threads[i][j]--
					al.Threads[i][k]++
					if r2, err := Evaluate(m, apps, al); err == nil {
						if s2 := obj(r2); s2 > score+1e-9 {
							score, res, improved = s2, r2, true
							continue
						}
					}
					al.Threads[i][j]++
					al.Threads[i][k]--
				}
				for i2 := 0; i2 < nApps && !improved; i2++ {
					if i2 == i || al.Threads[i][j] == 0 {
						continue
					}
					al.Threads[i][j]--
					al.Threads[i2][j]++
					if r2, err := Evaluate(m, apps, al); err == nil {
						if s2 := obj(r2); s2 > score+1e-9 {
							score, res, improved = s2, r2, true
							continue
						}
					}
					al.Threads[i][j]++
					al.Threads[i2][j]--
				}
			}
		}
		if !improved {
			break
		}
	}
	return al.Clone(), res, score, nil
}

// oldOptimize is Optimize over oldHillClimb (same starts, same
// tie-breaking), the baseline the rewritten Optimize must match.
func oldOptimize(m *machine.Machine, apps []App, obj Objective, maxIters int) (Allocation, *Result, error) {
	if obj == nil {
		obj = TotalGFLOPS
	}
	if maxIters <= 0 {
		maxIters = 10000
	}
	starts := candidateStarts(m, apps)
	if len(starts) == 0 {
		return Allocation{}, nil, ErrNoAllocation
	}
	var bestAl Allocation
	var bestRes *Result
	bestScore := -1.0
	for _, s := range starts {
		al, res, score, err := oldHillClimb(m, apps, s, obj, maxIters)
		if err != nil {
			continue
		}
		if score > bestScore {
			bestScore, bestAl, bestRes = score, al, res
		}
	}
	if bestRes == nil {
		return Allocation{}, nil, ErrNoAllocation
	}
	return bestAl, bestRes, nil
}

// TestHillClimbScanResumeKeepsOptima asserts the scan-resume rewrite
// reaches optima at least as good as the restart-from-scratch baseline
// on the paper's fixtures — in particular, identical objective values
// on Tables I-III.
func TestHillClimbScanResumeKeepsOptima(t *testing.T) {
	cases := []struct {
		name string
		m    *machine.Machine
		apps []App
	}{
		{"paper-model", machine.PaperModel(), paperApps()},
		{"paper-model-bad", machine.PaperModelNUMABad(), numaBadApps()},
		{"skylake", machine.SkylakeQuad(), tableIIIApps()},
		{"skylake-bad", machine.SkylakeQuad(), tableIIIBadApps()},
	}
	for _, c := range cases {
		_, oldRes, err := oldOptimize(c.m, c.apps, TotalGFLOPS, 0)
		if err != nil {
			t.Fatalf("%s: oldOptimize: %v", c.name, err)
		}
		_, newRes, err := Optimize(c.m, c.apps, TotalGFLOPS, 0)
		if err != nil {
			t.Fatalf("%s: Optimize: %v", c.name, err)
		}
		if newRes.TotalGFLOPS < oldRes.TotalGFLOPS-1e-9 {
			t.Errorf("%s: scan-resume optimum %v worse than baseline %v",
				c.name, newRes.TotalGFLOPS, oldRes.TotalGFLOPS)
		}
		if newRes.TotalGFLOPS > oldRes.TotalGFLOPS+1e-9 {
			// Better is acceptable in principle, but on these fixtures the
			// neighbourhoods agree — flag it so a drift is investigated.
			t.Errorf("%s: scan-resume optimum %v differs from baseline %v",
				c.name, newRes.TotalGFLOPS, oldRes.TotalGFLOPS)
		}
	}
}
