package roofline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// PaperApps are the applications of the paper's Tables I/II: three
// memory-bound apps (AI=0.5) and one compute-bound app (AI=10).
func paperApps() []App {
	return []App{
		{Name: "mem1", AI: 0.5},
		{Name: "mem2", AI: 0.5},
		{Name: "mem3", AI: 0.5},
		{Name: "comp", AI: 10},
	}
}

// numaBadApps are the Fig. 3 applications: three NUMA-perfect
// memory-bound apps (AI=0.5) and one NUMA-bad app (AI=1, home node 0).
func numaBadApps() []App {
	return []App{
		{Name: "mem1", AI: 0.5},
		{Name: "mem2", AI: 0.5},
		{Name: "mem3", AI: 0.5},
		{Name: "bad", AI: 1, Placement: NUMABad, HomeNode: 0},
	}
}

// tableIIIApps returns the calibrated Skylake applications from the
// paper's Section III.B: memory-bound AI=1/32, compute-bound AI=1.
func tableIIIApps() []App {
	return []App{
		{Name: "mem1", AI: 1.0 / 32},
		{Name: "mem2", AI: 1.0 / 32},
		{Name: "mem3", AI: 1.0 / 32},
		{Name: "comp", AI: 1},
	}
}

// tableIIIBadApps returns the NUMA-bad mix for Table III rows 4-5:
// memory-bound AI=1/32, NUMA-bad AI=1/16 with home node 0.
func tableIIIBadApps() []App {
	return []App{
		{Name: "mem1", AI: 1.0 / 32},
		{Name: "mem2", AI: 1.0 / 32},
		{Name: "mem3", AI: 1.0 / 32},
		{Name: "bad", AI: 1.0 / 16, Placement: NUMABad, HomeNode: 0},
	}
}

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f (tol %g)", name, got, want, tol)
	}
}

// TestTableI reproduces the paper's Table I: uneven allocation
// (1,1,1,5) on the 4x8 model machine -> 254 GFLOPS total, with every
// intermediate quantity the paper prints.
func TestTableI(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	al := MustPerNodeCounts(m, []int{1, 1, 1, 5})
	r := MustEvaluate(m, apps, al)

	almost(t, "total", r.TotalGFLOPS, 254, 1e-9)
	almost(t, "node total", r.PerNode[0].GFLOPS, 63.5, 1e-9)
	for i := 0; i < 3; i++ {
		almost(t, "mem app GFLOPS", r.AppGFLOPS[i], 4*4.5, 1e-9)
		almost(t, "mem bw/thread", r.PerApp[i][0].BWPerThread, 9, 1e-9)
		almost(t, "mem gflops/thread", r.PerApp[i][0].GFLOPSPerThread, 4.5, 1e-9)
		almost(t, "mem demand/thread", r.PerApp[i][0].DemandPerThread, 20, 1e-9)
	}
	almost(t, "comp app GFLOPS", r.AppGFLOPS[3], 4*50, 1e-9)
	almost(t, "comp bw/thread", r.PerApp[3][0].BWPerThread, 1, 1e-9)
	almost(t, "comp gflops/thread", r.PerApp[3][0].GFLOPSPerThread, 10, 1e-9)
	almost(t, "baseline", r.PerNode[0].Baseline, 4, 1e-9)
}

// TestTableII reproduces the paper's Table II: even allocation
// (2,2,2,2) -> 140 GFLOPS total.
func TestTableII(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	al := MustPerNodeCounts(m, []int{2, 2, 2, 2})
	r := MustEvaluate(m, apps, al)

	almost(t, "total", r.TotalGFLOPS, 140, 1e-9)
	almost(t, "node total", r.PerNode[0].GFLOPS, 35, 1e-9)
	for i := 0; i < 3; i++ {
		almost(t, "mem app/node", r.PerApp[i][0].GFLOPS, 5, 1e-9)
		almost(t, "mem bw/thread", r.PerApp[i][0].BWPerThread, 5, 1e-9)
	}
	almost(t, "comp app/node", r.PerApp[3][0].GFLOPS, 20, 1e-9)
}

// TestNodePerApp reproduces the paper's in-text third scenario: one NUMA
// node per application -> 128 GFLOPS (80 compute + 3x16 memory).
func TestNodePerApp(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	al := MustNodePerApp(m, 4, nil)
	r := MustEvaluate(m, apps, al)

	almost(t, "total", r.TotalGFLOPS, 128, 1e-9)
	for i := 0; i < 3; i++ {
		almost(t, "mem app", r.AppGFLOPS[i], 16, 1e-9)
	}
	almost(t, "comp app", r.AppGFLOPS[3], 80, 1e-9)
}

// TestFig3 reproduces the paper's NUMA-bad comparison: with three
// NUMA-perfect apps and one NUMA-bad app, the even allocation yields
// ~138 GFLOPS while dedicating one node per app yields 150 GFLOPS — the
// opposite ranking of the NUMA-perfect case.
func TestFig3(t *testing.T) {
	m := machine.PaperModelNUMABad()
	apps := numaBadApps()

	even := MustEvaluate(m, apps, MustPerNodeCounts(m, []int{2, 2, 2, 2}))
	// Paper reports 138; the model rules with 60 GB/s nodes and 10 GB/s
	// links give 138.75.
	almost(t, "even total", even.TotalGFLOPS, 138.75, 1e-9)

	// NUMA-bad app gets its home node; perfect apps get the others.
	nodeOf := []machine.NodeID{1, 2, 3, 0}
	nodePerApp := MustEvaluate(m, apps, MustNodePerApp(m, 4, nodeOf))
	almost(t, "node-per-app total", nodePerApp.TotalGFLOPS, 150, 1e-9)

	if nodePerApp.TotalGFLOPS <= even.TotalGFLOPS {
		t.Error("ranking should reverse: node-per-app must beat even for the NUMA-bad mix")
	}

	// And the reference ranking without the NUMA-bad app (Tables I/II
	// machine): even beats node-per-app.
	ref := machine.PaperModel()
	refApps := paperApps()
	refEven := MustEvaluate(ref, refApps, MustPerNodeCounts(ref, []int{2, 2, 2, 2}))
	refNPA := MustEvaluate(ref, refApps, MustNodePerApp(ref, 4, nil))
	if refEven.TotalGFLOPS <= refNPA.TotalGFLOPS {
		t.Error("reference ranking: even must beat node-per-app for NUMA-perfect apps")
	}
}

// TestTableIIIModel reproduces the model column of the paper's Table III
// on the calibrated Skylake machine.
func TestTableIIIModel(t *testing.T) {
	m := machine.SkylakeQuad()

	// Scenario 1: uneven (1,1,1,17) -> 23.20.
	r1 := MustEvaluate(m, tableIIIApps(), MustPerNodeCounts(m, []int{1, 1, 1, 17}))
	almost(t, "S1 uneven", r1.TotalGFLOPS, 23.20, 0.005)

	// Scenario 2: even (5,5,5,5) -> 18.12.
	r2 := MustEvaluate(m, tableIIIApps(), MustPerNodeCounts(m, []int{5, 5, 5, 5}))
	almost(t, "S2 even", r2.TotalGFLOPS, 18.12, 0.005)

	// Scenario 3: node per app -> 15.18.
	r3 := MustEvaluate(m, tableIIIApps(), MustNodePerApp(m, 4, nil))
	almost(t, "S3 node-per-app", r3.TotalGFLOPS, 15.18, 0.005)

	// Scenario 4: NUMA-bad cross-node, even -> 13.98.
	r4 := MustEvaluate(m, tableIIIBadApps(), MustPerNodeCounts(m, []int{5, 5, 5, 5}))
	almost(t, "S4 cross-node", r4.TotalGFLOPS, 13.98, 0.005)

	// Scenario 5: NUMA-bad on-node, node per app -> 15.18.
	r5 := MustEvaluate(m, tableIIIBadApps(), MustNodePerApp(m, 4, []machine.NodeID{1, 2, 3, 0}))
	almost(t, "S5 on-node", r5.TotalGFLOPS, 15.18, 0.005)
}

func TestEvaluateErrors(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()

	// Wrong dimensions.
	if _, err := Evaluate(m, apps, NewAllocation(2, 4)); err == nil {
		t.Error("expected error for app count mismatch")
	}
	if _, err := Evaluate(m, apps, NewAllocation(4, 2)); err == nil {
		t.Error("expected error for node count mismatch")
	}
	// Negative count.
	bad := NewAllocation(4, 4)
	bad.Threads[0][0] = -1
	if _, err := Evaluate(m, apps, bad); err == nil {
		t.Error("expected error for negative count")
	}
	// Over-subscription.
	over := NewAllocation(4, 4)
	over.Threads[0][0] = 9
	if _, err := Evaluate(m, apps, over); err == nil {
		t.Error("expected error for over-subscription")
	}
	// Bad AI.
	if _, err := Evaluate(m, []App{{Name: "x", AI: 0}}, NewAllocation(1, 4)); err == nil {
		t.Error("expected error for zero AI")
	}
	// Bad home node.
	if _, err := Evaluate(m, []App{{Name: "x", AI: 1, Placement: NUMABad, HomeNode: 9}}, NewAllocation(1, 4)); err == nil {
		t.Error("expected error for out-of-range home node")
	}
}

func TestAllocationHelpers(t *testing.T) {
	m := machine.PaperModel()
	al := MustEven(m, 4)
	for i := 0; i < 4; i++ {
		if al.AppThreads(i) != 8 {
			t.Errorf("even: app %d has %d threads, want 8", i, al.AppThreads(i))
		}
	}
	if al.TotalThreads() != 32 {
		t.Errorf("even: total %d, want 32", al.TotalThreads())
	}
	if _, err := Even(m, 3); err == nil {
		t.Error("Even with 3 apps on 8-core nodes should fail")
	}
	if _, err := PerNodeCounts(m, []int{4, 5}); err == nil {
		t.Error("PerNodeCounts over-subscribing should fail")
	}
	if _, err := PerNodeCounts(m, []int{-1}); err == nil {
		t.Error("PerNodeCounts with negative count should fail")
	}
	if _, err := NodePerApp(m, 5, nil); err == nil {
		t.Error("NodePerApp with more apps than nodes should fail")
	}
	if _, err := NodePerApp(m, 2, []machine.NodeID{1, 1}); err == nil {
		t.Error("NodePerApp with duplicate nodes should fail")
	}
	if _, err := NodePerApp(m, 2, []machine.NodeID{0, 9}); err == nil {
		t.Error("NodePerApp with out-of-range node should fail")
	}

	fs := FairShare(m, 3) // 8 cores / 3 apps: 3+3+2 style
	for j := 0; j < 4; j++ {
		if n := fs.NodeThreads(machine.NodeID(j)); n != 8 {
			t.Errorf("fair share node %d has %d threads, want 8", j, n)
		}
	}
	// Rotation: the app getting the extra cores differs per node.
	if fs.Threads[0][0] == fs.Threads[0][1] && fs.Threads[0][1] == fs.Threads[0][2] && fs.Threads[0][2] == fs.Threads[0][3] {
		t.Log("fair-share rotation degenerate; allocation:", fs)
	}
	if err := fs.Validate(m, []App{{AI: 1}, {AI: 1}, {AI: 1}}); err != nil {
		t.Errorf("fair share should validate: %v", err)
	}
}

func TestWorkedTableI(t *testing.T) {
	m := machine.PaperModel()
	tab, err := Worked(m, paperApps(), []int{1, 1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "worked total", tab.Total, 254, 1e-9)
	almost(t, "worked per node", tab.TotalPerNode, 63.5, 1e-9)
	// Check key intermediate rows against the paper's printed values.
	find := func(label string) WorkedRow {
		for _, r := range tab.Rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("row %q not found", label)
		return WorkedRow{}
	}
	almost(t, "total required", find("total required bandwidth (GB/s)").Shared, 65, 1e-9)
	almost(t, "baseline", find("baseline GB/s per thread").Shared, 4, 1e-9)
	almost(t, "allocated node", find("allocated node GB/s").Shared, 17, 1e-9)
	almost(t, "remaining node", find("remaining node GB/s").Shared, 15, 1e-9)
	almost(t, "still required", find("still required GB/s").Shared, 48, 1e-9)
	almost(t, "remainder per thread", find("remainder given to a thread (GB/s)").Shared, 5, 1e-9)
	tot := find("total allocated to each thread (GB/s)")
	almost(t, "mem total/thread", tot.Values[0], 9, 1e-9)
	almost(t, "comp total/thread", tot.Values[3], 1, 1e-9)
	if tab.String() == "" {
		t.Error("empty worked table rendering")
	}
}

func TestWorkedTableII(t *testing.T) {
	m := machine.PaperModel()
	tab, err := Worked(m, paperApps(), []int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "worked total", tab.Total, 140, 1e-9)
	almost(t, "worked per node", tab.TotalPerNode, 35, 1e-9)
}

func TestWorkedErrors(t *testing.T) {
	m := machine.PaperModel()
	if _, err := Worked(m, paperApps(), []int{1, 1}); err == nil {
		t.Error("expected count mismatch error")
	}
	if _, err := Worked(m, numaBadApps(), []int{1, 1, 1, 1}); err == nil {
		t.Error("expected NUMA-bad rejection")
	}
	het := &machine.Machine{Name: "het", Nodes: []machine.Node{
		{Cores: 8, PeakGFLOPS: 10, MemBandwidth: 32},
		{Cores: 4, PeakGFLOPS: 10, MemBandwidth: 32},
	}}
	if _, err := Worked(het, paperApps(), []int{1, 1, 1, 1}); err == nil {
		t.Error("expected uniform machine requirement")
	}
}

func TestOptimizerBeatsEven(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	_, res, err := Optimize(m, apps, TotalGFLOPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Table I shows 254 is achievable; the optimizer must do at least
	// that well.
	if res.TotalGFLOPS < 254-1e-9 {
		t.Errorf("optimizer found %.3f GFLOPS, want >= 254", res.TotalGFLOPS)
	}
}

func TestBestPerNodeCounts(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	counts, _, res, err := BestPerNodeCounts(m, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGFLOPS < 254-1e-9 {
		t.Errorf("exhaustive best %.3f GFLOPS, want >= 254 (counts %v)", res.TotalGFLOPS, counts)
	}
	// The compute-bound app should receive most threads.
	maxIdx := 0
	for i, c := range counts {
		if c > counts[maxIdx] {
			maxIdx = i
		}
		_ = c
	}
	if maxIdx != 3 {
		t.Errorf("best counts %v should favor the compute-bound app", counts)
	}
}

func TestMinAppObjective(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	r := MustEvaluate(m, apps, MustPerNodeCounts(m, []int{1, 1, 1, 5}))
	if got := MinAppGFLOPS(r); math.Abs(got-18) > 1e-9 {
		t.Errorf("MinAppGFLOPS = %g, want 18", got)
	}
	w := WeightedAppGFLOPS([]float64{0, 0, 0, 1})
	if got := w(r); math.Abs(got-200) > 1e-9 {
		t.Errorf("weighted = %g, want 200", got)
	}
	if MinAppGFLOPS(&Result{}) != 0 {
		t.Error("MinAppGFLOPS of empty result should be 0")
	}
}

// TestAblationNoBaseline: dropping the baseline guarantee starves the
// compute-bound app in the Table I scenario and lowers the total.
func TestAblationNoBaseline(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	al := MustPerNodeCounts(m, []int{1, 1, 1, 5})
	base := MustEvaluate(m, apps, al)
	nb, err := EvaluateOpts(m, apps, al, Options{NoBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if nb.TotalGFLOPS >= base.TotalGFLOPS {
		t.Errorf("no-baseline total %.3f should be below baseline total %.3f", nb.TotalGFLOPS, base.TotalGFLOPS)
	}
	// The compute-bound app must lose its guaranteed share.
	if nb.AppGFLOPS[3] >= base.AppGFLOPS[3] {
		t.Errorf("compute-bound app should be starved without baseline: %.3f vs %.3f", nb.AppGFLOPS[3], base.AppGFLOPS[3])
	}
}

// TestAblationLocalFirst: serving local accessors first starves the
// NUMA-bad app's remote threads in the Table III scenario 4.
func TestAblationLocalFirst(t *testing.T) {
	m := machine.SkylakeQuad()
	apps := tableIIIBadApps()
	al := MustPerNodeCounts(m, []int{5, 5, 5, 5})
	remoteFirst := MustEvaluate(m, apps, al)
	localFirst, err := EvaluateOpts(m, apps, al, Options{LocalFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if localFirst.AppGFLOPS[3] >= remoteFirst.AppGFLOPS[3] {
		t.Errorf("local-first should starve the NUMA-bad app: %.3f vs %.3f", localFirst.AppGFLOPS[3], remoteFirst.AppGFLOPS[3])
	}
}

// Property: bandwidth conservation and the baseline guarantee hold for
// random machines, apps, and allocations.
func TestBandwidthInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(4)
		cores := 1 + rng.Intn(8)
		m := machine.Uniform("prop", nodes, cores, 0.5+rng.Float64()*20, 1+rng.Float64()*100, 1+rng.Float64()*50)
		nApps := 1 + rng.Intn(4)
		apps := make([]App, nApps)
		for i := range apps {
			apps[i] = App{Name: "a", AI: 0.01 + rng.Float64()*10}
			if rng.Intn(3) == 0 {
				apps[i].Placement = NUMABad
				apps[i].HomeNode = machine.NodeID(rng.Intn(nodes))
			}
		}
		al := NewAllocation(nApps, nodes)
		for j := 0; j < nodes; j++ {
			free := cores
			for i := 0; i < nApps && free > 0; i++ {
				c := rng.Intn(free + 1)
				al.Threads[i][j] = c
				free -= c
			}
		}
		r, err := Evaluate(m, apps, al)
		if err != nil {
			return false
		}
		// Conservation: local + remote served <= node bandwidth.
		for j := 0; j < nodes; j++ {
			if r.PerNode[j].LocalServed+r.PerNode[j].RemoteServed > m.Nodes[j].MemBandwidth*(1+1e-9) {
				return false
			}
		}
		for i := range apps {
			for j := 0; j < nodes; j++ {
				pr := r.PerApp[i][j]
				if pr.Threads == 0 {
					continue
				}
				// Grant never exceeds demand, GFLOPS never exceeds peak.
				if pr.BWPerThread > pr.DemandPerThread*(1+1e-9) {
					return false
				}
				if pr.GFLOPSPerThread > m.Nodes[j].PeakGFLOPS*(1+1e-9) {
					return false
				}
				// Baseline guarantee for local accessors.
				if !pr.Remote {
					guaranteed := min(pr.DemandPerThread, r.PerNode[j].Baseline)
					if pr.BWPerThread < guaranteed-1e-9 {
						return false
					}
				}
			}
		}
		// Totals are sums.
		sum := 0.0
		for _, g := range r.AppGFLOPS {
			sum += g
		}
		return math.Abs(sum-r.TotalGFLOPS) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: adding a thread to an application never reduces its own
// GFLOPS (monotonicity of self-interest) on NUMA-perfect workloads.
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.Uniform("prop", 2, 8, 1+rng.Float64()*10, 10+rng.Float64()*50, 0)
		apps := []App{
			{Name: "a", AI: 0.05 + rng.Float64()*5},
			{Name: "b", AI: 0.05 + rng.Float64()*5},
		}
		al := NewAllocation(2, 2)
		al.Threads[0][0] = 1 + rng.Intn(3)
		al.Threads[1][0] = 1 + rng.Intn(3)
		r1 := MustEvaluate(m, apps, al)
		al2 := al.Clone()
		al2.Threads[0][0]++
		r2 := MustEvaluate(m, apps, al2)
		return r2.AppGFLOPS[0] >= r1.AppGFLOPS[0]-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocationString(t *testing.T) {
	al := NewAllocation(2, 2).Set(0, 0, 3).Set(1, 1, 4)
	if al.String() == "" {
		t.Error("empty allocation string")
	}
	if al.AppThreads(0) != 3 || al.NodeThreads(1) != 4 {
		t.Error("Set did not apply")
	}
}

func TestSummary(t *testing.T) {
	m := machine.PaperModel()
	apps := paperApps()
	r := MustEvaluate(m, apps, MustEven(m, 4))
	if r.Summary(apps) == "" {
		t.Error("empty summary")
	}
}

func TestPlacementString(t *testing.T) {
	if NUMAPerfect.String() != "numa-perfect" || NUMABad.String() != "numa-bad" {
		t.Error("placement names wrong")
	}
	if Placement(99).String() == "" {
		t.Error("unknown placement should still render")
	}
}

// Property: permuting two applications (and their allocation rows)
// permutes their results — the model has no hidden app-order bias.
func TestPermutationSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.Uniform("p", 2+rng.Intn(3), 4+rng.Intn(4), 1+rng.Float64()*10, 10+rng.Float64()*50, 1+rng.Float64()*20)
		apps := []App{
			{Name: "a", AI: 0.05 + rng.Float64()*5},
			{Name: "b", AI: 0.05 + rng.Float64()*5},
			{Name: "c", AI: 0.05 + rng.Float64()*5},
		}
		al := NewAllocation(3, m.NumNodes())
		for j := 0; j < m.NumNodes(); j++ {
			free := m.Nodes[j].Cores
			for i := 0; i < 3 && free > 0; i++ {
				c := rng.Intn(free + 1)
				al.Threads[i][j] = c
				free -= c
			}
		}
		r1 := MustEvaluate(m, apps, al)

		// Swap apps 0 and 2 together with their allocation rows.
		apps2 := []App{apps[2], apps[1], apps[0]}
		al2 := al.Clone()
		al2.Threads[0], al2.Threads[2] = al2.Threads[2], al2.Threads[0]
		r2 := MustEvaluate(m, apps2, al2)

		return math.Abs(r1.AppGFLOPS[0]-r2.AppGFLOPS[2]) < 1e-9 &&
			math.Abs(r1.AppGFLOPS[2]-r2.AppGFLOPS[0]) < 1e-9 &&
			math.Abs(r1.TotalGFLOPS-r2.TotalGFLOPS) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: scaling peak compute and all bandwidths by k scales every
// GFLOPS output by k (the model is homogeneous of degree one in the
// machine's rates).
func TestScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 0.5 + rng.Float64()*4
		peak := 1 + rng.Float64()*10
		bw := 10 + rng.Float64()*50
		link := 1 + rng.Float64()*20
		m1 := machine.Uniform("m1", 3, 6, peak, bw, link)
		m2 := machine.Uniform("m2", 3, 6, peak*k, bw*k, link*k)
		apps := []App{
			{Name: "a", AI: 0.05 + rng.Float64()*5},
			{Name: "bad", AI: 0.05 + rng.Float64()*5, Placement: NUMABad, HomeNode: 1},
		}
		al := NewAllocation(2, 3)
		for j := 0; j < 3; j++ {
			al.Threads[0][j] = 1 + rng.Intn(3)
			al.Threads[1][j] = 1 + rng.Intn(3)
		}
		r1 := MustEvaluate(m1, apps, al)
		r2 := MustEvaluate(m2, apps, al)
		return math.Abs(r2.TotalGFLOPS-k*r1.TotalGFLOPS) < 1e-6*math.Max(1, r2.TotalGFLOPS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHeterogeneousMachine: the model handles nodes with different core
// counts, rates and bandwidths.
func TestHeterogeneousMachine(t *testing.T) {
	m := &machine.Machine{Name: "het", Nodes: []machine.Node{
		{Cores: 4, PeakGFLOPS: 10, MemBandwidth: 20},
		{Cores: 8, PeakGFLOPS: 5, MemBandwidth: 60},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	apps := []App{{Name: "mem", AI: 0.5}, {Name: "comp", AI: 100}}
	al := NewAllocation(2, 2)
	al.Threads[0][0] = 2 // node 0: demand 2*20=40 > 20 -> saturate
	al.Threads[1][1] = 8 // node 1: compute at peak 5 each
	r := MustEvaluate(m, apps, al)
	almost(t, "mem app", r.AppGFLOPS[0], 20*0.5, 1e-9) // 20 GB/s * 0.5
	almost(t, "comp app", r.AppGFLOPS[1], 8*5, 1e-9)
}
