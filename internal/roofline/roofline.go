// Package roofline implements the paper's analytic performance model
// (Section III.A) for multiple applications sharing a NUMA machine under
// per-NUMA-node thread allocations.
//
// The model follows the roofline idea: every thread of an application
// with arithmetic intensity AI running on a core with peak rate P GFLOPS
// demands P/AI GB/s of memory bandwidth. Bandwidth on each node is split
// by two rules:
//
//  1. baseline guarantee — each core can get at least its equal share
//     (node bandwidth divided by the number of cores on the node), and
//  2. proportional remainder — bandwidth left after the baselines is
//     split among still-unsatisfied threads proportionally to their
//     residual demand (water-filling, so no thread receives more than
//     it asked for).
//
// The NUMA-bad extension: an application may store all of its data on a
// single home node. Its threads on other nodes access that memory over
// the inter-node link. A node's memory controller serves remote requests
// first (each capped by the link bandwidth from the requesting node) and
// splits the remaining bandwidth among local accessors as above.
package roofline

import (
	"errors"
	"fmt"

	"repro/internal/machine"
)

// Placement describes how an application lays out its data.
type Placement int

const (
	// NUMAPerfect applications keep every thread's data on the thread's
	// own node; all accesses are local.
	NUMAPerfect Placement = iota
	// NUMABad applications store all data on a single home node; threads
	// running elsewhere access it remotely over the inter-node links.
	NUMABad
)

// String returns the placement name.
func (p Placement) String() string {
	switch p {
	case NUMAPerfect:
		return "numa-perfect"
	case NUMABad:
		return "numa-bad"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// App is one application in the model.
type App struct {
	// Name labels the application in reports.
	Name string
	// AI is the arithmetic intensity: FLOPs per byte moved to/from
	// memory. Must be positive.
	AI float64
	// Placement selects the data layout (NUMAPerfect or NUMABad).
	Placement Placement
	// HomeNode is the node holding all data of a NUMABad application.
	// Ignored for NUMAPerfect.
	HomeNode machine.NodeID
	// Weight scales this app's contribution under weighted objectives
	// (ObjWeightedPriority). Zero means 1; the analytic model itself
	// ignores it, so evaluation results never depend on Weight.
	Weight float64
}

// demandPerThread returns the bandwidth one thread tries to use when its
// core has the given peak compute rate.
func (a App) demandPerThread(peakGFLOPS float64) float64 {
	return peakGFLOPS / a.AI
}

// Allocation assigns worker threads to applications per NUMA node:
// Threads[app][node] is the number of threads application app runs on
// node. This is the paper's blocking option 3 ("number of threads per
// NUMA node") expressed declaratively.
type Allocation struct {
	Threads [][]int
}

// NewAllocation returns an all-zero allocation for the given number of
// applications and nodes.
func NewAllocation(apps, nodes int) Allocation {
	t := make([][]int, apps)
	for i := range t {
		t[i] = make([]int, nodes)
	}
	return Allocation{Threads: t}
}

// Clone returns a deep copy.
func (al Allocation) Clone() Allocation {
	if len(al.Threads) == 0 {
		return Allocation{Threads: [][]int{}}
	}
	cp := NewAllocation(len(al.Threads), len(al.Threads[0]))
	for i := range al.Threads {
		copy(cp.Threads[i], al.Threads[i])
	}
	return cp
}

// Set assigns count threads of app on node and returns the allocation
// for chaining.
func (al Allocation) Set(app int, node machine.NodeID, count int) Allocation {
	al.Threads[app][node] = count
	return al
}

// AppThreads returns the total threads of one application.
func (al Allocation) AppThreads(app int) int {
	total := 0
	for _, c := range al.Threads[app] {
		total += c
	}
	return total
}

// NodeThreads returns the total threads on one node across applications.
func (al Allocation) NodeThreads(node machine.NodeID) int {
	total := 0
	for _, row := range al.Threads {
		total += row[node]
	}
	return total
}

// TotalThreads returns the overall thread count.
func (al Allocation) TotalThreads() int {
	total := 0
	for i := range al.Threads {
		total += al.AppThreads(i)
	}
	return total
}

// Validate checks the allocation against a machine and application list:
// matching dimensions, non-negative counts, and the paper's
// no-over-subscription assumption (threads per node <= cores per node).
func (al Allocation) Validate(m *machine.Machine, apps []App) error {
	if len(al.Threads) != len(apps) {
		return fmt.Errorf("roofline: allocation has %d apps, want %d", len(al.Threads), len(apps))
	}
	for i, row := range al.Threads {
		if len(row) != m.NumNodes() {
			return fmt.Errorf("roofline: app %d allocation has %d nodes, want %d", i, len(row), m.NumNodes())
		}
		for j, c := range row {
			if c < 0 {
				return fmt.Errorf("roofline: app %d node %d has negative thread count %d", i, j, c)
			}
		}
	}
	for j := 0; j < m.NumNodes(); j++ {
		if n := al.NodeThreads(machine.NodeID(j)); n > m.Nodes[j].Cores {
			return fmt.Errorf("roofline: node %d over-subscribed: %d threads > %d cores", j, n, m.Nodes[j].Cores)
		}
	}
	return nil
}

// String renders the allocation as a compact matrix.
func (al Allocation) String() string {
	s := ""
	for i, row := range al.Threads {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("app%d:%v", i, row)
	}
	return s
}

// AppNodeResult is the model outcome for one application on one node.
type AppNodeResult struct {
	// Threads running there.
	Threads int
	// DemandPerThread is the bandwidth (GB/s) each thread asked for.
	DemandPerThread float64
	// BWPerThread is the bandwidth (GB/s) each thread received.
	BWPerThread float64
	// GFLOPSPerThread is min(peak, BWPerThread*AI).
	GFLOPSPerThread float64
	// GFLOPS is the application's total on this node.
	GFLOPS float64
	// Remote reports whether the bandwidth was served by a remote
	// node's memory (NUMA-bad threads off their home node).
	Remote bool
}

// NodeResult aggregates one memory node's bandwidth accounting.
type NodeResult struct {
	// Baseline is the per-core guaranteed share (bandwidth remaining
	// after remote service divided by core count).
	Baseline float64
	// RemoteServed is bandwidth this node's memory spent serving
	// threads running on other nodes.
	RemoteServed float64
	// LocalServed is bandwidth handed to threads running on this node
	// (including NUMA-bad threads whose home is this node).
	LocalServed float64
	// GFLOPS is the total compute rate of threads running on this node.
	GFLOPS float64
}

// Result is the full model outcome.
type Result struct {
	// PerApp[i][j] describes app i's threads running on node j.
	PerApp [][]AppNodeResult
	// PerNode[j] describes memory node j's accounting.
	PerNode []NodeResult
	// AppGFLOPS[i] is app i's machine-wide total.
	AppGFLOPS []float64
	// TotalGFLOPS is the machine-wide total.
	TotalGFLOPS float64
}

// Options tweaks the model's bandwidth-split rules. The zero value is
// the paper's model; the flags exist for the ablation studies in
// DESIGN.md.
type Options struct {
	// NoBaseline drops the per-core baseline guarantee and splits the
	// whole node bandwidth proportionally to demand.
	NoBaseline bool
	// LocalFirst serves local accessors before remote ones, inverting
	// the paper's remote-first rule.
	LocalFirst bool
}

// Evaluate runs the model with default options. It returns an error if
// the inputs are inconsistent (dimensions, negative counts,
// over-subscription, non-positive AI, out-of-range home node).
func Evaluate(m *machine.Machine, apps []App, al Allocation) (*Result, error) {
	return EvaluateOpts(m, apps, al, Options{})
}

// EvaluateOpts runs the model with explicit options.
func EvaluateOpts(m *machine.Machine, apps []App, al Allocation, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for i, a := range apps {
		if a.AI <= 0 {
			return nil, fmt.Errorf("roofline: app %d (%s) has non-positive AI %g", i, a.Name, a.AI)
		}
		if a.Placement == NUMABad {
			if int(a.HomeNode) < 0 || int(a.HomeNode) >= m.NumNodes() {
				return nil, fmt.Errorf("roofline: app %d (%s) home node %d out of range", i, a.Name, a.HomeNode)
			}
		}
	}
	if err := al.Validate(m, apps); err != nil {
		return nil, err
	}

	nApps, nNodes := len(apps), m.NumNodes()
	res := &Result{
		PerApp:    make([][]AppNodeResult, nApps),
		PerNode:   make([]NodeResult, nNodes),
		AppGFLOPS: make([]float64, nApps),
	}
	for i := range res.PerApp {
		res.PerApp[i] = make([]AppNodeResult, nNodes)
	}

	// For each memory node h: serve remote accessors (NUMA-bad apps
	// with home h whose threads run elsewhere, each capped by the
	// requesting link) and local accessors (NUMA-perfect threads on h
	// plus NUMA-bad threads on their home node). The paper's rule is
	// remote first; opt.LocalFirst inverts the order for ablation.
	type remoteClaim struct {
		app, node int // app index, node its threads run on
		demand    float64
		granted   float64
	}
	remoteClaims := make([][]remoteClaim, nNodes) // indexed by memory node

	// serveRemote grants remote demand against avail bandwidth and
	// returns the total served.
	serveRemote := func(h int, avail float64) float64 {
		perLink := make([]float64, nNodes) // demand grouped by requesting node
		var claims []remoteClaim
		for i, a := range apps {
			if a.Placement != NUMABad || int(a.HomeNode) != h {
				continue
			}
			for j := 0; j < nNodes; j++ {
				if j == h {
					continue
				}
				th := al.Threads[i][j]
				if th == 0 {
					continue
				}
				d := float64(th) * a.demandPerThread(m.Nodes[j].PeakGFLOPS)
				perLink[j] += d
				claims = append(claims, remoteClaim{app: i, node: j, demand: d})
			}
		}
		// Cap per link, splitting a saturated link proportionally to
		// demand across the apps sharing it.
		served := 0.0
		for idx := range claims {
			c := &claims[idx]
			link := m.Link(machine.NodeID(c.node), machine.NodeID(h))
			if perLink[c.node] <= link {
				c.granted = c.demand
			} else {
				c.granted = c.demand * link / perLink[c.node]
			}
			served += c.granted
		}
		// The memory controller cannot serve more than avail in total.
		if served > avail {
			scale := 0.0
			if served > 0 {
				scale = avail / served
			}
			for idx := range claims {
				claims[idx].granted *= scale
			}
			served = avail
		}
		remoteClaims[h] = claims
		return served
	}

	// serveLocal splits avail bandwidth among local accessors of node h
	// (baseline guarantee + proportional remainder) and returns the
	// total handed out.
	serveLocal := func(h int, avail float64) float64 {
		cores := m.Nodes[h].Cores
		baseline := avail / float64(cores)
		if opt.NoBaseline {
			baseline = 0
		}
		res.PerNode[h].Baseline = baseline

		type localClaim struct {
			app       int
			threads   int
			perThread float64 // demand per thread
			granted   float64 // granted per thread
		}
		var claims []localClaim
		for i, a := range apps {
			th := al.Threads[i][h]
			if th == 0 {
				continue
			}
			if a.Placement == NUMABad && int(a.HomeNode) != h {
				continue // served remotely
			}
			claims = append(claims, localClaim{
				app:       i,
				threads:   th,
				perThread: a.demandPerThread(m.Nodes[h].PeakGFLOPS),
			})
		}
		allocated := 0.0
		for idx := range claims {
			c := &claims[idx]
			c.granted = min(c.perThread, baseline)
			allocated += c.granted * float64(c.threads)
		}
		// Split the remainder proportionally to residual demand. A
		// share proportional to the residual never overshoots any
		// thread's demand, so a single round settles it: either the
		// remainder covers all residuals (share capped at 1) or it is
		// consumed exactly.
		remaining := avail - allocated
		residualTotal := 0.0
		for idx := range claims {
			c := &claims[idx]
			residualTotal += (c.perThread - c.granted) * float64(c.threads)
		}
		if remaining > 1e-12 && residualTotal > 1e-12 {
			share := remaining / residualTotal
			if share > 1 {
				share = 1
			}
			for idx := range claims {
				c := &claims[idx]
				c.granted += (c.perThread - c.granted) * share
			}
		}
		localServed := 0.0
		for _, c := range claims {
			a := apps[c.app]
			gPerThread := min(m.Nodes[h].PeakGFLOPS, c.granted*a.AI)
			r := &res.PerApp[c.app][h]
			r.Threads = c.threads
			r.DemandPerThread = c.perThread
			r.BWPerThread = c.granted
			r.GFLOPSPerThread = gPerThread
			r.GFLOPS = gPerThread * float64(c.threads)
			localServed += c.granted * float64(c.threads)
		}
		res.PerNode[h].LocalServed = localServed
		return localServed
	}

	for h := 0; h < nNodes; h++ {
		bw := m.Nodes[h].MemBandwidth
		if opt.LocalFirst {
			local := serveLocal(h, bw)
			res.PerNode[h].RemoteServed = serveRemote(h, bw-local)
		} else {
			remote := serveRemote(h, bw)
			res.PerNode[h].RemoteServed = remote
			serveLocal(h, bw-remote)
		}
	}

	// Pass 3: fold remote grants into per-app results. A NUMA-bad app's
	// threads on node j (home h) compute at the rate allowed by the
	// bandwidth granted by node h.
	for h := 0; h < nNodes; h++ {
		for _, c := range remoteClaims[h] {
			i, j := c.app, c.node
			th := al.Threads[i][j]
			a := apps[i]
			bwPerThread := c.granted / float64(th)
			gPerThread := min(m.Nodes[j].PeakGFLOPS, bwPerThread*a.AI)
			r := &res.PerApp[i][j]
			r.Threads = th
			r.DemandPerThread = c.demand / float64(th)
			r.BWPerThread = bwPerThread
			r.GFLOPSPerThread = gPerThread
			r.GFLOPS = gPerThread * float64(th)
			r.Remote = true
		}
	}

	// Totals.
	for i := range apps {
		for j := 0; j < nNodes; j++ {
			g := res.PerApp[i][j].GFLOPS
			res.AppGFLOPS[i] += g
			res.PerNode[j].GFLOPS += g
		}
		res.TotalGFLOPS += res.AppGFLOPS[i]
	}
	return res, nil
}

// MustEvaluate is Evaluate but panics on error; for tests and examples
// with known-good inputs.
func MustEvaluate(m *machine.Machine, apps []App, al Allocation) *Result {
	r, err := Evaluate(m, apps, al)
	if err != nil {
		panic(err)
	}
	return r
}

// ErrNoAllocation is returned by optimizers when no feasible allocation
// exists.
var ErrNoAllocation = errors.New("roofline: no feasible allocation")
