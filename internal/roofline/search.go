package roofline

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
)

// Search owns the reusable state of the per-node-counts optimizer: a
// pool of Evaluators handed to worker goroutines. The zero value is
// ready to use, and one Search can be shared by concurrent solves (the
// control-plane solver holds one for its whole lifetime).
type Search struct {
	// Parallelism caps the worker goroutines fanned out over the
	// top-level enumeration branches; 0 means GOMAXPROCS.
	Parallelism int

	mu   sync.Mutex
	pool []*Evaluator
}

func (s *Search) acquire(m *machine.Machine, apps []App) (*Evaluator, error) {
	s.mu.Lock()
	var ev *Evaluator
	if n := len(s.pool); n > 0 {
		ev, s.pool = s.pool[n-1], s.pool[:n-1]
	}
	s.mu.Unlock()
	if ev == nil {
		return NewEvaluator(m, apps)
	}
	if err := ev.Reset(m, apps, Options{}); err != nil {
		return nil, err
	}
	return ev, nil
}

func (s *Search) release(ev *Evaluator) {
	s.mu.Lock()
	s.pool = append(s.pool, ev)
	s.mu.Unlock()
}

// boundSlack is the margin under the incumbent a subtree's upper bound
// must clear before it is pruned. It absorbs floating-point noise in
// the bound so equal-scoring optima are never pruned, which keeps the
// parallel search's result identical to the sequential enumeration's
// first-in-order optimum.
const boundSlack = 1e-6

// seqLeafThreshold is the candidate count under which the search stays
// on the calling goroutine; fan-out costs more than it buys on the
// paper-sized problems.
const seqLeafThreshold = 4096

// bnbCtx is the read-only shared state of one BestPerNodeCountsFloor
// run plus the shared incumbent.
type bnbCtx struct {
	nApps, nNodes int
	floor         int
	obj           Objective
	// bound is the objective's admissible upper bound (see
	// ObjectiveSpec); nil declares the run bound-free and the search
	// degrades to the unpruned enumeration over the memoizing
	// Evaluator.
	bound BoundFunc
	prune bool

	best atomic.Uint64 // Float64bits of the best score seen so far
	next atomic.Int64  // branch work-stealing cursor
}

func (c *bnbCtx) bestScore() float64 { return math.Float64frombits(c.best.Load()) }

func (c *bnbCtx) raiseBest(v float64) {
	for {
		old := c.best.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if c.best.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// bnbWorker is one goroutine's private search state.
type bnbWorker struct {
	ctx    *bnbCtx
	ev     *Evaluator
	counts []int
	al     Allocation
	res    *Result

	branchBest   float64
	branchCounts []int
}

func (w *bnbWorker) setRow(pos, count int) {
	w.counts[pos] = count
	row := w.al.Threads[pos]
	for j := range row {
		row[j] = count
	}
}

func (w *bnbWorker) rec(pos, remaining int) {
	c := w.ctx
	if pos == c.nApps {
		if c.prune {
			// Leaf-level bound: the greedy relaxation over the completed
			// counts vector is far cheaper than a model evaluation and
			// discards hopeless candidates outright.
			if ub := c.bound(w.counts, pos, 0); ub < c.bestScore()-boundSlack {
				return
			}
		}
		if err := w.ev.EvaluateInto(w.res, w.al); err != nil {
			return // mirrors the reference enumeration skipping bad candidates
		}
		s := c.obj(w.res)
		if s > w.branchBest {
			w.branchBest = s
			w.branchCounts = append(w.branchCounts[:0], w.counts...)
		}
		if c.prune {
			c.raiseBest(s)
		}
		return
	}
	if c.prune && pos > 0 {
		if ub := c.bound(w.counts, pos, remaining); ub < c.bestScore()-boundSlack {
			return
		}
	}
	for cnt := c.floor; cnt <= remaining; cnt++ {
		w.setRow(pos, cnt)
		w.rec(pos+1, remaining-cnt)
	}
}

// branchResult is one top-level branch's best candidate; results are
// reduced in branch order so the parallel search returns the same
// first-in-enumeration-order optimum as a sequential scan.
type branchResult struct {
	score  float64
	counts []int
}

// BestPerNodeCountsFloor searches uniform per-node allocations (every
// app gets counts[i] threads on every node, each app at least floor)
// for the one maximizing obj, exactly like the package-level
// BestPerNodeCountsFloor but using the memoizing Evaluator, a
// branch-and-bound prune (for the default total-GFLOPS objective), and
// goroutine fan-out of the top-level branches. The returned counts,
// allocation, and Result are identical to the exhaustive reference
// search (search_test.go proves it differentially).
func (s *Search) BestPerNodeCountsFloor(m *machine.Machine, apps []App, obj Objective, floor int) ([]int, Allocation, *Result, error) {
	return s.BestPerNodeCountsFloorFrom(nil, m, apps, obj, floor)
}

// BestPerNodeCountsFloorFrom is BestPerNodeCountsFloor warm-started
// from a previous optimum: prev is the counts vector of a related solve
// — the same apps (len(prev) == len(apps)), or the demand set minus its
// last app (len(prev) == len(apps)-1, the +1-app neighbour the fleet
// scorer hits on every placement decision). Seed candidates derived
// from prev are evaluated up front and their true objective values
// raise the branch-and-bound incumbent before the search starts, so
// when the new optimum is near the old one most subtrees prune
// immediately.
//
// Warm-starting cannot change the answer: every seed is an ordinary
// feasible candidate, so the incumbent is only raised to objective
// values the enumeration itself attains, and the pruning margin
// (boundSlack) already keeps equal-scoring subtrees alive. Counts,
// allocation, and Result are bit-identical to the cold solve —
// warmstart_test.go and the FuzzEvaluatorEquivalence corpus prove it
// differentially. A prev of any other length, or one infeasible under
// the requested floor, is ignored (the solve degrades to cold, never
// errors).
//
// A bare Objective carries no bound, so only the recognized
// TotalGFLOPS function prunes; anything else enumerates unpruned —
// the exact historical semantics. New callers wanting pruned search
// under other objectives use BestPerNodeCountsFloorSpec with an
// ObjectiveSpec supplying its own admissible bound.
func (s *Search) BestPerNodeCountsFloorFrom(prev []int, m *machine.Machine, apps []App, obj Objective, floor int) ([]int, Allocation, *Result, error) {
	var spec ObjectiveSpec
	if obj == nil || objIsTotalGFLOPS(obj) {
		spec = ObjTotalGFLOPS
	} else {
		spec = boundFreeSpec{obj}
	}
	return s.BestPerNodeCountsFloorSpec(spec, prev, m, apps, floor)
}

// BestPerNodeCountsFloorSpec is the spec-based core of the search: the
// objective and its (optional) admissible bound both come from spec.
// With a bound the branch-and-bound prunes; without one the search
// degrades to the exhaustive enumeration over the memoizing Evaluator,
// which is exact for any objective. prev warm-starts exactly as in
// BestPerNodeCountsFloorFrom.
func (s *Search) BestPerNodeCountsFloorSpec(spec ObjectiveSpec, prev []int, m *machine.Machine, apps []App, floor int) ([]int, Allocation, *Result, error) {
	obj := spec.Objective(apps)
	if floor < 0 {
		floor = 0
	}
	nApps := len(apps)
	if nApps == 0 {
		// The reference enumeration visits the single empty allocation.
		al := NewAllocation(0, m.NumNodes())
		res, err := Evaluate(m, apps, al)
		if err != nil {
			return nil, Allocation{}, nil, err
		}
		return nil, al, res, nil
	}

	capCores := m.Nodes[0].Cores
	for _, n := range m.Nodes[1:] {
		if n.Cores < capCores {
			capCores = n.Cores
		}
	}
	nBranches := capCores - floor + 1
	if nBranches <= 0 {
		return nil, Allocation{}, nil, ErrNoAllocation
	}

	ctx := &bnbCtx{
		nApps:  nApps,
		nNodes: m.NumNodes(),
		floor:  floor,
		obj:    obj,
		bound:  spec.Bound(m, apps),
	}
	ctx.prune = ctx.bound != nil
	ctx.best.Store(math.Float64bits(math.Inf(-1)))

	if ctx.prune && len(prev) > 0 {
		s.seedIncumbent(ctx, m, apps, prev, floor, capCores)
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBranches {
		workers = nBranches
	}
	if estimateLeaves(capCores-floor*nApps, nApps) <= seqLeafThreshold {
		workers = 1
	}

	results := make([]branchResult, nBranches)
	runWorker := func() error {
		ev, err := s.acquire(m, apps)
		if err != nil {
			return err
		}
		defer s.release(ev)
		w := &bnbWorker{
			ctx:    ctx,
			ev:     ev,
			counts: make([]int, nApps),
			al:     NewAllocation(nApps, ctx.nNodes),
			res:    &Result{},
		}
		for {
			b := int(ctx.next.Add(1)) - 1
			if b >= nBranches {
				return nil
			}
			w.branchBest = -1.0
			w.setRow(0, floor+b)
			w.rec(1, capCores-(floor+b))
			if w.branchBest > -1.0 {
				results[b] = branchResult{
					score:  w.branchBest,
					counts: append([]int(nil), w.branchCounts...),
				}
			}
		}
	}

	var firstErr error
	if workers <= 1 {
		firstErr = runWorker()
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				errs[wi] = runWorker()
			}(wi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		// Invalid (machine, apps) inputs: the reference enumeration skips
		// every candidate and reports no feasible allocation.
		return nil, Allocation{}, nil, ErrNoAllocation
	}

	// Deterministic reduction in branch order: strict > keeps the first
	// achiever of the maximum, matching the sequential scan.
	best := -1.0
	var bestCounts []int
	for b := range results {
		if results[b].counts != nil && results[b].score > best {
			best, bestCounts = results[b].score, results[b].counts
		}
	}
	if bestCounts == nil {
		return nil, Allocation{}, nil, ErrNoAllocation
	}
	al, err := PerNodeCounts(m, bestCounts)
	if err != nil {
		return nil, Allocation{}, nil, err
	}
	// The returned Result comes from the reference model so callers get
	// reference-bitwise outputs no matter which path found the optimum.
	res, err := Evaluate(m, apps, al)
	if err != nil {
		return nil, Allocation{}, nil, err
	}
	return bestCounts, al, res, nil
}

// seedIncumbent evaluates the warm-start candidates derived from prev
// (see BestPerNodeCountsFloorFrom) and raises the shared incumbent to
// the best of their true objective values. Full-length hints are
// evaluated as-is; one-short hints are extended over every feasible
// count for the missing last app (at most capCores cheap evaluations,
// all against the memoizing Evaluator). Infeasible hints and evaluation
// failures are silently skipped — seeding is purely an acceleration.
func (s *Search) seedIncumbent(ctx *bnbCtx, m *machine.Machine, apps []App, prev []int, floor, capCores int) {
	nApps := len(apps)
	extend := false
	switch len(prev) {
	case nApps:
	case nApps - 1:
		extend = true
	default:
		return // not a ±1 neighbour's counts; nothing usable
	}
	used := 0
	for _, c := range prev {
		if c < floor {
			return // infeasible under this floor (e.g. a floor-0 optimum's zero)
		}
		used += c
	}
	if used > capCores {
		return
	}
	if extend && used+floor > capCores {
		// The previous optimum saturates the node (the common case when
		// an app arrives on a packed machine). Free room for the
		// newcomer by shaving the widest rows — still a plausible
		// near-optimal shape, and seeds are re-evaluated anyway.
		shrunk := append(make([]int, 0, nApps-1), prev...)
		for used+floor > capCores {
			widest := -1
			for i, c := range shrunk {
				if c > floor && (widest < 0 || c > shrunk[widest]) {
					widest = i
				}
			}
			if widest < 0 {
				return // every row already at floor; no room at all
			}
			shrunk[widest]--
			used--
		}
		prev = shrunk
	}
	ev, err := s.acquire(m, apps)
	if err != nil {
		return // invalid inputs; the cold path reports the error
	}
	defer s.release(ev)
	w := &bnbWorker{
		ctx:    ctx,
		ev:     ev,
		counts: make([]int, nApps),
		al:     NewAllocation(nApps, ctx.nNodes),
		res:    &Result{},
	}
	for i, c := range prev {
		w.setRow(i, c)
	}
	if !extend {
		if err := ev.EvaluateInto(w.res, w.al); err == nil {
			ctx.raiseBest(ctx.obj(w.res))
		}
		return
	}
	for c := floor; c <= capCores-used; c++ {
		w.setRow(nApps-1, c)
		if err := ev.EvaluateInto(w.res, w.al); err == nil {
			ctx.raiseBest(ctx.obj(w.res))
		}
	}
}

// BestPerNodeCounts is BestPerNodeCountsFloor with no floor.
func (s *Search) BestPerNodeCounts(m *machine.Machine, apps []App, obj Objective) ([]int, Allocation, *Result, error) {
	return s.BestPerNodeCountsFloor(m, apps, obj, 0)
}

// estimateLeaves returns the number of candidates: compositions of at
// most budget extra cores over n apps, C(budget+n, n), saturating well
// above the sequential threshold.
func estimateLeaves(budget, n int) int64 {
	if budget < 0 {
		return 0
	}
	v := int64(1)
	for i := 1; i <= n; i++ {
		v = v * int64(budget+i) / int64(i)
		if v > 1<<40 {
			return 1 << 40
		}
	}
	return v
}

// totalGFLOPSPtr is TotalGFLOPS's code pointer, captured once so the
// per-solve identity check below stays off the reflect path.
var totalGFLOPSPtr = reflect.ValueOf(Objective(TotalGFLOPS)).Pointer()

// objIsTotalGFLOPS reports whether obj is the package's TotalGFLOPS
// function; the branch-and-bound upper bound is only sound for it.
func objIsTotalGFLOPS(obj Objective) bool {
	return reflect.ValueOf(obj).Pointer() == totalGFLOPSPtr
}
