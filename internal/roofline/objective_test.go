package roofline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// checkSpecMatches solves (m, apps, floor) through spec and through a
// reference path and demands bit-identical counts and Results (or the
// same error). ref is typically the legacy Objective entry point (for
// the total-GFLOPS identity) or the same spec stripped of its bound
// (for bound-admissibility: pruned and unpruned search must agree).
func checkSpecMatches(t *testing.T, label string, s *Search, spec ObjectiveSpec,
	m *machine.Machine, apps []App, floor int,
	ref func() ([]int, Allocation, *Result, error)) {
	t.Helper()
	gotCounts, _, gotRes, gotErr := s.BestPerNodeCountsFloorSpec(spec, nil, m, apps, floor)
	wantCounts, _, wantRes, wantErr := ref()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error mismatch: spec %v, ref %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if !intsEqual(gotCounts, wantCounts) {
		t.Fatalf("%s: counts mismatch: spec %v, ref %v", label, gotCounts, wantCounts)
	}
	if d := diffResults(gotRes, wantRes); d != "" {
		t.Fatalf("%s: result mismatch: %s", label, d)
	}
}

// strippedSpec is spec with its bound removed: the search enumerates
// every candidate unpruned, so it is exact for any objective and serves
// as the admissibility oracle for the spec's bound.
type strippedSpec struct{ ObjectiveSpec }

func (strippedSpec) Bound(*machine.Machine, []App) BoundFunc { return nil }

func TestObjectiveSpecByName(t *testing.T) {
	for _, name := range []string{"", "total-gflops", "weighted-priority", "max-min"} {
		if _, err := ObjectiveSpecByName(name); err != nil {
			t.Fatalf("ObjectiveSpecByName(%q): %v", name, err)
		}
	}
	if spec, _ := ObjectiveSpecByName(""); spec.Name() != "total-gflops" {
		t.Fatalf("empty name resolved to %q, want total-gflops", spec.Name())
	}
	if _, err := ObjectiveSpecByName("bogus"); err == nil {
		t.Fatal("ObjectiveSpecByName(bogus): want error")
	}
}

// TestTotalSpecBitIdenticalToLegacySearch pins the tentpole refactor:
// routing the total-GFLOPS objective through the ObjectiveSpec
// interface returns exactly what the historical Search entry points
// return, on every paper fixture and floor.
func TestTotalSpecBitIdenticalToLegacySearch(t *testing.T) {
	var s Search
	cases := []struct {
		name string
		m    *machine.Machine
		apps []App
	}{
		{"paper-model", machine.PaperModel(), paperApps()},
		{"paper-model-bad", machine.PaperModelNUMABad(), numaBadApps()},
		{"skylake", machine.SkylakeQuad(), tableIIIApps()},
		{"skylake-bad", machine.SkylakeQuad(), tableIIIBadApps()},
	}
	for _, c := range cases {
		for _, floor := range []int{0, 1, 2} {
			label := fmt.Sprintf("%s/floor=%d", c.name, floor)
			checkSpecMatches(t, label, &s, ObjTotalGFLOPS, c.m, c.apps, floor,
				func() ([]int, Allocation, *Result, error) {
					return s.BestPerNodeCountsFloor(c.m, c.apps, TotalGFLOPS, floor)
				})
			checkSpecMatches(t, label+"/nil-obj", &s, ObjTotalGFLOPS, c.m, c.apps, floor,
				func() ([]int, Allocation, *Result, error) {
					return s.BestPerNodeCountsFloor(c.m, c.apps, nil, floor)
				})
		}
	}
}

// TestWeightedBoundAdmissiblePaperFixtures checks the weighted-priority
// bound differentially: the pruned solve must return exactly what the
// unpruned enumeration of the same objective returns. A single
// disagreement would mean the bound cut off an optimum, i.e. it is not
// admissible.
func TestWeightedBoundAdmissiblePaperFixtures(t *testing.T) {
	var s Search
	weightSets := [][]float64{
		{},                 // all unset: weighted must equal plain total
		{4, 1, 1, 1},       // one prioritized app
		{1, 2, 4, 8},       // geometric spread
		{8, 8, 1, 1},       // two classes
		{0.5, 1, 1, 0.125}, // fractional weights
	}
	for wi, weights := range weightSets {
		apps := paperApps()
		for i := range apps {
			if i < len(weights) {
				apps[i].Weight = weights[i]
			}
		}
		for _, floor := range []int{0, 1} {
			label := fmt.Sprintf("weights=%d/floor=%d", wi, floor)
			checkSpecMatches(t, label, &s, ObjWeightedPriority,
				machine.PaperModel(), apps, floor,
				func() ([]int, Allocation, *Result, error) {
					return s.BestPerNodeCountsFloorSpec(strippedSpec{ObjWeightedPriority}, nil,
						machine.PaperModel(), apps, floor)
				})
		}
	}
}

// TestMaxMinSpecMatchesLegacyObjective: the bound-free max-min spec
// must land exactly where the legacy unpruned MinAppGFLOPS search does.
func TestMaxMinSpecMatchesLegacyObjective(t *testing.T) {
	var s Search
	m := machine.PaperModel()
	apps := paperApps()
	for _, floor := range []int{0, 1} {
		checkSpecMatches(t, fmt.Sprintf("max-min/floor=%d", floor), &s, ObjMaxMinGFLOPS, m, apps, floor,
			func() ([]int, Allocation, *Result, error) {
				return s.BestPerNodeCountsFloor(m, apps, MinAppGFLOPS, floor)
			})
	}
}

// TestWeightedSpecPrefersPrioritizedApp is a semantic smoke test: under
// a strongly skewed weight the optimizer should never hand the
// prioritized app less throughput than the unweighted optimum does.
func TestWeightedSpecPrefersPrioritizedApp(t *testing.T) {
	var s Search
	m := machine.PaperModel()
	base := paperApps()
	_, _, plainRes, err := s.BestPerNodeCountsFloorSpec(ObjTotalGFLOPS, nil, m, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	weighted := paperApps()
	weighted[0].Weight = 64
	_, _, wRes, err := s.BestPerNodeCountsFloorSpec(ObjWeightedPriority, nil, m, weighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wRes.AppGFLOPS[0] < plainRes.AppGFLOPS[0] {
		t.Fatalf("weighted optimum gives app0 %.3f GFLOPS, below unweighted %.3f",
			wRes.AppGFLOPS[0], plainRes.AppGFLOPS[0])
	}
}

// TestWeightedBoundAdmissibleRandomized fuzzes the admissibility check
// over random machines, app mixes, and weights.
func TestWeightedBoundAdmissibleRandomized(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		objectiveRound(t, r)
	}
}

// objectiveRound is one randomized objective-equivalence check, also
// wired into FuzzEvaluatorEquivalence so the checked-in corpus replays
// it: (1) total-GFLOPS through the spec interface vs the legacy entry
// point, (2) weighted-priority pruned vs unpruned, (3) max-min spec vs
// legacy MinAppGFLOPS — all bit-identical. Machines stay small so the
// unpruned references stay cheap.
func objectiveRound(t *testing.T, r *rand.Rand) {
	t.Helper()
	nNodes := 2 + r.Intn(2)
	m := &machine.Machine{Name: "obj-rand"}
	for i := 0; i < nNodes; i++ {
		m.Nodes = append(m.Nodes, machine.Node{
			Cores:        2 + r.Intn(4),
			PeakGFLOPS:   1 + 10*r.Float64(),
			MemBandwidth: 4 + 40*r.Float64(),
		})
	}
	nApps := 2 + r.Intn(3)
	apps := make([]App, nApps)
	for i := range apps {
		apps[i] = App{Name: fmt.Sprintf("oapp%d", i), AI: pow2(r.Float64()*8 - 4)}
		if r.Intn(3) > 0 {
			apps[i].Weight = pow2(float64(r.Intn(7) - 3))
		}
	}
	if r.Intn(2) == 0 {
		bad := r.Intn(nApps)
		apps[bad].Placement = NUMABad
		apps[bad].HomeNode = machine.NodeID(r.Intn(nNodes))
	}
	floor := r.Intn(2)
	var s Search
	checkSpecMatches(t, fmt.Sprintf("rand/total floor=%d", floor), &s, ObjTotalGFLOPS, m, apps, floor,
		func() ([]int, Allocation, *Result, error) {
			return s.BestPerNodeCountsFloor(m, apps, TotalGFLOPS, floor)
		})
	checkSpecMatches(t, fmt.Sprintf("rand/weighted floor=%d", floor), &s, ObjWeightedPriority, m, apps, floor,
		func() ([]int, Allocation, *Result, error) {
			return s.BestPerNodeCountsFloorSpec(strippedSpec{ObjWeightedPriority}, nil, m, apps, floor)
		})
	checkSpecMatches(t, fmt.Sprintf("rand/max-min floor=%d", floor), &s, ObjMaxMinGFLOPS, m, apps, floor,
		func() ([]int, Allocation, *Result, error) {
			return s.BestPerNodeCountsFloor(m, apps, MinAppGFLOPS, floor)
		})
}
