package roofline

import (
	"testing"

	"repro/internal/machine"
)

// eightAppMix is the scaled workload for the solve benchmarks: eight
// applications spanning bandwidth-bound, compute-bound, mixed, and one
// NUMA-bad, on the calibrated 4x20-core Skylake topology.
func eightAppMix() []App {
	return []App{
		{Name: "stream0", AI: 1.0 / 32},
		{Name: "stream1", AI: 1.0 / 32},
		{Name: "stream2", AI: 1.0 / 32},
		{Name: "dgemm0", AI: 10},
		{Name: "dgemm1", AI: 10},
		{Name: "mixed0", AI: 1},
		{Name: "mixed1", AI: 1},
		{Name: "bad0", AI: 1.0 / 16, Placement: NUMABad, HomeNode: 0},
	}
}

// BenchmarkSolveColdTableI is the paper's Table I search (4 apps,
// floor 1) through the pruned parallel Search, evaluator pool cold.
func BenchmarkSolveColdTableI(b *testing.B) {
	m := machine.PaperModel()
	apps := paperApps()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Search
		if _, _, _, err := s.BestPerNodeCountsFloor(m, apps, TotalGFLOPS, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCold8Apps is the scaled search: 8 apps on 4x20 cores,
// floor 1 — C(12+8,8) = 125970 per-node-counts candidates before
// pruning. This is the ISSUE's >=5x target workload.
func BenchmarkSolveCold8Apps(b *testing.B) {
	m := machine.SkylakeQuad()
	apps := eightAppMix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Search
		if _, _, _, err := s.BestPerNodeCountsFloor(m, apps, TotalGFLOPS, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWarmStart8Apps is the incremental path the fleet
// scorer rides: the 8th app arrives on a machine whose 7-app optimum
// is known, and the solve is warm-started from those counts. Compare
// against BenchmarkSolveCold8Apps for the warm-start win.
func BenchmarkSolveWarmStart8Apps(b *testing.B) {
	m := machine.SkylakeQuad()
	apps := eightAppMix()
	var s Search
	prev, _, _, err := s.BestPerNodeCountsFloor(m, apps[:7], TotalGFLOPS, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.BestPerNodeCountsFloorFrom(prev, m, apps, TotalGFLOPS, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveNaive8Apps is the pre-PR baseline at the same scale:
// exhaustive enumeration, every candidate through the reference model.
func BenchmarkSolveNaive8Apps(b *testing.B) {
	m := machine.SkylakeQuad()
	apps := eightAppMix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := naiveBestPerNodeCountsFloor(m, apps, TotalGFLOPS, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateReference is one reference-model evaluation of the
// Table I allocation: the unit of work the memo amortizes.
func BenchmarkEvaluateReference(b *testing.B) {
	m := machine.PaperModel()
	apps := paperApps()
	al := MustPerNodeCounts(m, []int{1, 1, 1, 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(m, apps, al); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorMemoHit is the same evaluation through a warmed
// Evaluator: all four nodes hit the memo, zero allocations.
func BenchmarkEvaluatorMemoHit(b *testing.B) {
	m := machine.PaperModel()
	apps := paperApps()
	ev, err := NewEvaluator(m, apps)
	if err != nil {
		b.Fatal(err)
	}
	al := MustPerNodeCounts(m, []int{1, 1, 1, 5})
	res := &Result{}
	if err := ev.EvaluateInto(res, al); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ev.EvaluateInto(res, al); err != nil {
			b.Fatal(err)
		}
	}
}
