package roofline

import (
	"math"
	"testing"

	"repro/internal/machine"
)

func TestCurveShape(t *testing.T) {
	m := machine.PaperModel() // ridge at 10 / (32/8) = 2.5
	pts := Curve(m, 0.01, 100, 40)
	if len(pts) != 40 {
		t.Fatalf("points = %d", len(pts))
	}
	// Monotonically non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].GFLOPS < pts[i-1].GFLOPS-1e-9 {
			t.Errorf("curve not monotone at %d: %.3f -> %.3f", i, pts[i-1].GFLOPS, pts[i].GFLOPS)
		}
	}
	// Bandwidth-bound start: GFLOPS = AI * total bandwidth.
	first := pts[0]
	if want := first.AI * m.TotalBandwidth(); math.Abs(first.GFLOPS-want) > want*0.01 {
		t.Errorf("low-AI point %.4f GFLOPS, want %.4f (bandwidth-bound)", first.GFLOPS, want)
	}
	// Compute plateau at the end.
	last := pts[len(pts)-1]
	if math.Abs(last.GFLOPS-m.PeakGFLOPS()) > 1e-6 {
		t.Errorf("high-AI point %.3f GFLOPS, want peak %.0f", last.GFLOPS, m.PeakGFLOPS())
	}
}

func TestCurveDefaults(t *testing.T) {
	m := machine.PaperModel()
	pts := Curve(m, -1, 0, 0) // all defaults kick in
	if len(pts) != 2 {
		t.Errorf("default points = %d, want 2", len(pts))
	}
}

func TestRidge(t *testing.T) {
	if got := Ridge(machine.PaperModel()); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("ridge = %g, want 2.5", got)
	}
	// SkylakeQuad: 0.29 / (100/20) = 0.058.
	if got := Ridge(machine.SkylakeQuad()); math.Abs(got-0.058) > 1e-12 {
		t.Errorf("ridge = %g, want 0.058", got)
	}
}

func TestRidgeSplitsCurve(t *testing.T) {
	// Below the ridge the machine is bandwidth-bound, above it
	// compute-bound; verify on both sides.
	m := machine.PaperModel()
	ridge := Ridge(m)
	below := Curve(m, ridge/4, ridge/4, 2)[0]
	above := Curve(m, ridge*4, ridge*4, 2)[0]
	if math.Abs(below.GFLOPS-below.AI*m.TotalBandwidth()) > 1e-6 {
		t.Error("below ridge should be bandwidth-bound")
	}
	if math.Abs(above.GFLOPS-m.PeakGFLOPS()) > 1e-6 {
		t.Error("above ridge should be at peak")
	}
}

// TestCrossoverEvenVsNodePerApp generalizes the paper's Tables I/II vs
// Fig. 3 finding: sweeping the fourth application's AI, the even
// allocation beats node-per-app at high AI (Table I/II regime), and
// they converge as everything becomes memory-bound.
func TestCrossoverEvenVsNodePerApp(t *testing.T) {
	m := machine.PaperModel()
	apps := []App{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}
	even := MustPerNodeCounts(m, []int{2, 2, 2, 2})
	npa := MustNodePerApp(m, 4, nil)

	// At the paper's AI=10 the even allocation wins (140 vs 128).
	rEven := MustEvaluate(m, apps, even)
	rNPA := MustEvaluate(m, apps, npa)
	if rEven.TotalGFLOPS <= rNPA.TotalGFLOPS {
		t.Fatalf("precondition: even should win at AI=10")
	}

	res, err := Crossover(m, apps, 3, even, npa, 0.01, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	// With all NUMA-perfect apps, sharing nodes never loses in this
	// model: at very low AI the two allocations tie and everywhere else
	// the even split (A) wins — no crossover.
	if res.Found {
		t.Errorf("unexpected crossover at AI=%.3f", res.AI)
	}
	if res.BelowWinner != "A" || res.AboveWinner != "A" {
		t.Errorf("winners = %s/%s, want A/A", res.BelowWinner, res.AboveWinner)
	}
}

// TestCrossoverNUMABad: for the NUMA-bad mix the ranking flips twice as
// the bad app's intensity changes. At very low AI even sharing wins
// (the bad app gets almost nothing either way, and the memory-bound
// apps prefer the shared remainder); around AI~1 — the paper's Fig. 3
// case — isolating the bad app on its home node wins; at high AI the
// bad app turns compute-bound and sharing wins again.
func TestCrossoverNUMABad(t *testing.T) {
	m := machine.PaperModelNUMABad()
	apps := []App{
		{AI: 0.5}, {AI: 0.5}, {AI: 0.5},
		{AI: 1, Placement: NUMABad, HomeNode: 0},
	}
	even := MustPerNodeCounts(m, []int{2, 2, 2, 2})
	npa := MustNodePerApp(m, 4, []machine.NodeID{1, 2, 3, 0})

	// Paper's point: at AI=1 node-per-app (B) wins.
	rEven := MustEvaluate(m, apps, even)
	rNPA := MustEvaluate(m, apps, npa)
	if rNPA.TotalGFLOPS <= rEven.TotalGFLOPS {
		t.Fatalf("precondition: node-per-app should win at AI=1 (%.1f vs %.1f)", rNPA.TotalGFLOPS, rEven.TotalGFLOPS)
	}

	// First crossover: even (A) below, node-per-app (B) above.
	first, err := Crossover(m, apps, 3, even, npa, 0.1, 1000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Found {
		t.Fatal("expected a first crossover for the NUMA-bad mix")
	}
	if first.BelowWinner != "A" || first.AboveWinner != "B" {
		t.Errorf("first crossover winners: %s/%s, want A/B", first.BelowWinner, first.AboveWinner)
	}
	if first.AI >= 1 {
		t.Errorf("first crossover at AI=%.3f, want below the paper's AI=1 regime", first.AI)
	}
	// Second crossover above AI=1: back to even (A) as the bad app
	// turns compute-bound.
	second, err := Crossover(m, apps, 3, even, npa, 1, 1000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Found || second.BelowWinner != "B" || second.AboveWinner != "A" {
		t.Errorf("second crossover: found=%v %s/%s, want B->A", second.Found, second.BelowWinner, second.AboveWinner)
	}
	// Verify the middle regime by sampling around AI=1.
	check := func(ai float64, wantA bool) {
		probe := append([]App(nil), apps...)
		probe[3].AI = ai
		a := MustEvaluate(m, probe, even).TotalGFLOPS
		bv := MustEvaluate(m, probe, npa).TotalGFLOPS
		if (a > bv) != wantA {
			t.Errorf("at AI=%.2f: even=%.1f npa=%.1f, wantA=%v", ai, a, bv, wantA)
		}
	}
	check(0.13, true)        // low AI: even wins
	check(1, false)          // Fig. 3 regime: isolate wins
	check(second.AI*4, true) // compute-bound: even wins again
}

func TestCrossoverBadIndex(t *testing.T) {
	m := machine.PaperModel()
	apps := []App{{AI: 1}}
	al := MustPerNodeCounts(m, []int{1})
	if _, err := Crossover(m, apps, 5, al, al, 0.1, 10, 8); err == nil {
		t.Error("expected error for bad app index")
	}
}
