package roofline

import (
	"fmt"

	"repro/internal/machine"
)

// BoundFunc is an admissible upper bound for the branch-and-bound
// search: given the partial assignment counts[0..pos-1] with rem
// per-node cores left for apps pos..n-1, it must return a value no
// smaller than the objective of any completion. Soundness is the
// caller's proof obligation — an inadmissible bound silently prunes
// optima.
type BoundFunc func(counts []int, pos, rem int) float64

// ObjectiveSpec couples an objective with the search machinery it
// needs. Objective returns the scoring function for a concrete demand
// set (specs like weighted-priority read per-app fields such as
// App.Weight). Bound returns an admissible branch-and-bound upper bound
// for the (machine, demand) pair, or nil to declare the spec
// bound-free: the search then falls back to the unpruned enumeration
// over the memoizing incremental Evaluator, which is exact for any
// objective.
type ObjectiveSpec interface {
	Name() string
	Objective(apps []App) Objective
	Bound(m *machine.Machine, apps []App) BoundFunc
}

// Built-in objective specs.
var (
	// ObjTotalGFLOPS maximizes machine-wide throughput. Its bound is
	// the greedy fractional relaxation of the bandwidth pool (see
	// greedyBound); solves through it are bit-identical to the
	// historical Search (objective_test.go pins this differentially).
	ObjTotalGFLOPS ObjectiveSpec = totalGFLOPSSpec{}
	// ObjWeightedPriority maximizes Σ wᵢ·gᵢ with wᵢ = App.Weight
	// (0 or negative means 1). The bound generalizes the greedy
	// relaxation: apps are granted bandwidth in descending wᵢ·AIᵢ
	// order, each capped at wᵢ·countsᵢ·Σpeak.
	ObjWeightedPriority ObjectiveSpec = weightedPrioritySpec{}
	// ObjMaxMinGFLOPS maximizes the slowest app's rate (a fairness
	// floor). It is bound-free: the max-min value of a subtree is not
	// bounded by any per-app bandwidth relaxation we can prove
	// admissible, so the search enumerates unpruned.
	ObjMaxMinGFLOPS ObjectiveSpec = maxMinSpec{}
)

// ObjectiveSpecByName resolves a wire/CLI objective name.
func ObjectiveSpecByName(name string) (ObjectiveSpec, error) {
	switch name {
	case "", ObjTotalGFLOPS.Name():
		return ObjTotalGFLOPS, nil
	case ObjWeightedPriority.Name():
		return ObjWeightedPriority, nil
	case ObjMaxMinGFLOPS.Name():
		return ObjMaxMinGFLOPS, nil
	}
	return nil, fmt.Errorf("roofline: unknown objective %q (have %s, %s, %s)",
		name, ObjTotalGFLOPS.Name(), ObjWeightedPriority.Name(), ObjMaxMinGFLOPS.Name())
}

type totalGFLOPSSpec struct{}

func (totalGFLOPSSpec) Name() string              { return "total-gflops" }
func (totalGFLOPSSpec) Objective([]App) Objective { return TotalGFLOPS }
func (totalGFLOPSSpec) Bound(m *machine.Machine, apps []App) BoundFunc {
	return newGreedyBound(m, apps, nil).boundUniform
}

type weightedPrioritySpec struct{}

func (weightedPrioritySpec) Name() string { return "weighted-priority" }

func (weightedPrioritySpec) Objective(apps []App) Objective {
	w := make([]float64, len(apps))
	for i := range apps {
		w[i] = appWeight(apps[i])
	}
	return WeightedAppGFLOPS(w)
}

func (weightedPrioritySpec) Bound(m *machine.Machine, apps []App) BoundFunc {
	w := make([]float64, len(apps))
	for i := range apps {
		w[i] = appWeight(apps[i])
	}
	return newGreedyBound(m, apps, w).bound
}

// appWeight maps App.Weight to an effective weight: unset (zero) and
// nonsensical negative weights score as 1, so demand sets that never
// set Weight behave exactly like plain per-app GFLOPS sums.
func appWeight(a App) float64 {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

type maxMinSpec struct{}

func (maxMinSpec) Name() string                            { return "max-min" }
func (maxMinSpec) Objective([]App) Objective               { return MinAppGFLOPS }
func (maxMinSpec) Bound(*machine.Machine, []App) BoundFunc { return nil }

// boundFreeSpec adapts a bare Objective into a bound-free spec; it is
// how the legacy BestPerNodeCountsFloor(obj) entry points preserve
// their exact historical prune semantics (prune only for TotalGFLOPS).
type boundFreeSpec struct{ obj Objective }

func (boundFreeSpec) Name() string                            { return "custom" }
func (s boundFreeSpec) Objective([]App) Objective             { return s.obj }
func (boundFreeSpec) Bound(*machine.Machine, []App) BoundFunc { return nil }

// greedyBound is the admissible upper bound shared by the total-GFLOPS
// and weighted-priority objectives (see DESIGN.md): every thread
// computes at most min(peak, granted·AI), nodes hand out at most their
// bandwidth in total (remote service included), so the weighted sum of
// app GFLOPS is at most the greedy fractional assignment of the
// machine's bandwidth pool to apps in descending value-density order
// (wᵢ·AIᵢ GFLOPS-value per GB/s), each app capped at wᵢ·countsᵢ·Σpeak.
// Unassigned apps pos..n-1 collapse into one pseudo-app holding the
// whole remaining core budget rem at the suffix-maximum density, capped
// at (suffix-max weight)·rem·Σpeak: any real completion spends suffix
// bandwidth at no better density and attains no more value, so the
// pseudo-app dominates it. With all weights 1 this reduces — float for
// float — to the total-GFLOPS bound the Search has always used.
type greedyBound struct {
	byDensDesc []int     // app indices sorted by density descending
	dens       []float64 // value density per app: w·AI (AI when unweighted)
	capPer     []float64 // value cap per granted core: w·Σpeak
	sufDens    []float64 // suffix maxima of dens in enumeration order
	sufCapPer  []float64 // suffix maxima of capPer in enumeration order
	sumPeak    float64   // uniform per-core cap (boundUniform fast path)
	totalBW    float64
}

func newGreedyBound(m *machine.Machine, apps []App, weights []float64) *greedyBound {
	nApps := len(apps)
	b := &greedyBound{
		dens:       make([]float64, nApps),
		capPer:     make([]float64, nApps),
		byDensDesc: make([]int, nApps),
		sufDens:    make([]float64, nApps+1),
		sufCapPer:  make([]float64, nApps+1),
	}
	sumPeak := 0.0
	for _, n := range m.Nodes {
		sumPeak += n.PeakGFLOPS
		b.totalBW += n.MemBandwidth
	}
	b.sumPeak = sumPeak
	for i, a := range apps {
		if weights == nil {
			b.dens[i] = a.AI
			b.capPer[i] = sumPeak
		} else {
			b.dens[i] = weights[i] * a.AI
			b.capPer[i] = weights[i] * sumPeak
		}
	}
	for i := range b.byDensDesc {
		b.byDensDesc[i] = i
	}
	// Insertion sort by density descending (index tie-break for
	// determinism).
	for a := 1; a < nApps; a++ {
		x := b.byDensDesc[a]
		j := a
		for j > 0 && b.dens[b.byDensDesc[j-1]] < b.dens[x] {
			b.byDensDesc[j] = b.byDensDesc[j-1]
			j--
		}
		b.byDensDesc[j] = x
	}
	for i := nApps - 1; i >= 0; i-- {
		b.sufDens[i] = max(b.sufDens[i+1], b.dens[i])
		b.sufCapPer[i] = max(b.sufCapPer[i+1], b.capPer[i])
	}
	return b
}

// boundUniform is bound specialized for uniform weights (the
// total-GFLOPS spec): every capPer entry is sumPeak, so the per-app
// slice loads collapse to one scalar. Float-for-float identical to
// bound with nil weights — this is the hot inner function of every
// default-objective solve, called at each search node.
func (b *greedyBound) boundUniform(counts []int, pos, rem int) float64 {
	pool := b.totalBW
	ub := 0.0
	pseudoDens := b.sufDens[pos]
	pseudoCap := float64(rem) * b.sumPeak
	pseudoDone := pseudoCap <= 0 || pseudoDens <= 0
	grant := func(cap, dens float64) float64 {
		need := cap / dens
		if need <= pool {
			pool -= need
			return cap
		}
		g := pool * dens
		pool = 0
		return g
	}
	for _, i := range b.byDensDesc {
		if pool <= 0 {
			break
		}
		if !pseudoDone && pseudoDens >= b.dens[i] {
			ub += grant(pseudoCap, pseudoDens)
			pseudoDone = true
			if pool <= 0 {
				break
			}
		}
		if i >= pos {
			continue // part of the pseudo-app
		}
		if cap := float64(counts[i]) * b.sumPeak; cap > 0 {
			ub += grant(cap, b.dens[i])
		}
	}
	if !pseudoDone && pool > 0 {
		ub += grant(pseudoCap, pseudoDens)
	}
	return ub
}

func (b *greedyBound) bound(counts []int, pos, rem int) float64 {
	pool := b.totalBW
	ub := 0.0
	pseudoDens := b.sufDens[pos]
	pseudoCap := float64(rem) * b.sufCapPer[pos]
	pseudoDone := pseudoCap <= 0 || pseudoDens <= 0
	grant := func(cap, dens float64) float64 {
		need := cap / dens
		if need <= pool {
			pool -= need
			return cap
		}
		g := pool * dens
		pool = 0
		return g
	}
	for _, i := range b.byDensDesc {
		if pool <= 0 {
			break
		}
		if !pseudoDone && pseudoDens >= b.dens[i] {
			ub += grant(pseudoCap, pseudoDens)
			pseudoDone = true
			if pool <= 0 {
				break
			}
		}
		if i >= pos {
			continue // part of the pseudo-app
		}
		if cap := float64(counts[i]) * b.capPer[i]; cap > 0 {
			ub += grant(cap, b.dens[i])
		}
	}
	if !pseudoDone && pool > 0 {
		ub += grant(pseudoCap, pseudoDens)
	}
	return ub
}
