package roofline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// checkWarmMatchesCold solves (m, apps, obj, floor) cold and
// warm-started from prev and demands bit-identical counts and Results
// (or the same error). This is the contract the fleet scorer's memo
// relies on: a warm-started solve is indistinguishable from a cold one.
func checkWarmMatchesCold(t *testing.T, label string, s *Search, m *machine.Machine, apps []App, obj Objective, floor int, prev []int) {
	t.Helper()
	coldCounts, _, coldRes, coldErr := s.BestPerNodeCountsFloor(m, apps, obj, floor)
	warmCounts, _, warmRes, warmErr := s.BestPerNodeCountsFloorFrom(prev, m, apps, obj, floor)
	if (coldErr == nil) != (warmErr == nil) {
		t.Fatalf("%s: error mismatch: cold %v, warm %v", label, coldErr, warmErr)
	}
	if coldErr != nil {
		return
	}
	if !intsEqual(coldCounts, warmCounts) {
		t.Fatalf("%s: counts mismatch: cold %v (score %v), warm %v (score %v)",
			label, coldCounts, coldRes.TotalGFLOPS, warmCounts, warmRes.TotalGFLOPS)
	}
	if d := diffResults(coldRes, warmRes); d != "" {
		t.Fatalf("%s: result mismatch: %s", label, d)
	}
}

// TestWarmStartBitIdenticalPaperFixtures walks every paper fixture
// through the ±1-app warm-start paths: for each demand set, solve it
// cold, then (a) re-solve warm-started from its own optimum, (b) solve
// the set minus each app warm-started from the optimum with that app's
// entry dropped, and (c) solve the set plus a newcomer warm-started
// from the full previous optimum (the one-short hint). All must be
// bit-identical to cold solves.
func TestWarmStartBitIdenticalPaperFixtures(t *testing.T) {
	var s Search
	cases := []struct {
		name string
		m    *machine.Machine
		apps []App
	}{
		{"paper-model", machine.PaperModel(), paperApps()},
		{"paper-model-bad", machine.PaperModelNUMABad(), numaBadApps()},
		{"skylake", machine.SkylakeQuad(), tableIIIApps()},
		{"skylake-bad", machine.SkylakeQuad(), tableIIIBadApps()},
	}
	newcomers := []App{
		{Name: "newcomer-mem", AI: 0.5},
		{Name: "newcomer-comp", AI: 10},
		{Name: "newcomer-bad", AI: 0.25, Placement: NUMABad, HomeNode: 0},
	}
	for _, c := range cases {
		for _, floor := range []int{0, 1} {
			prev, _, _, err := s.BestPerNodeCountsFloor(c.m, c.apps, TotalGFLOPS, floor)
			if err != nil {
				t.Fatalf("%s/floor=%d: cold solve: %v", c.name, floor, err)
			}
			// (a) identical demand set, full-length hint.
			checkWarmMatchesCold(t, fmt.Sprintf("%s/floor=%d/same", c.name, floor),
				&s, c.m, c.apps, TotalGFLOPS, floor, prev)
			// (b) each app removed, hint with its entry dropped.
			for drop := range c.apps {
				rest := make([]App, 0, len(c.apps)-1)
				hint := make([]int, 0, len(prev)-1)
				for i := range c.apps {
					if i == drop {
						continue
					}
					rest = append(rest, c.apps[i])
					hint = append(hint, prev[i])
				}
				checkWarmMatchesCold(t, fmt.Sprintf("%s/floor=%d/drop=%d", c.name, floor, drop),
					&s, c.m, rest, TotalGFLOPS, floor, hint)
			}
			// (c) a newcomer appended, one-short hint.
			for _, nc := range newcomers {
				with := append(append([]App(nil), c.apps...), nc)
				checkWarmMatchesCold(t, fmt.Sprintf("%s/floor=%d/add=%s", c.name, floor, nc.Name),
					&s, c.m, with, TotalGFLOPS, floor, prev)
			}
		}
	}
}

// TestWarmStartGarbageHints feeds hints that must be ignored — wrong
// lengths, floors violated, over-subscribed budgets, negatives — and
// demands the solve still exactly matches cold.
func TestWarmStartGarbageHints(t *testing.T) {
	var s Search
	m := machine.PaperModel()
	apps := paperApps()
	hints := [][]int{
		{},
		{1},
		{1, 1},
		{1, 1, 1, 1, 1, 1},     // too long
		{0, 0, 0},              // one short but violates floor 1
		{5, 5, 5, 5},           // over-subscribes the 8-core nodes
		{-1, 2, 2, 2},          // negative entry
		{100, 100, 100},        // one short, wildly over budget
		{8, 0, 0, 0},           // floor-0-shaped full hint under floor 1
	}
	for i, hint := range hints {
		checkWarmMatchesCold(t, fmt.Sprintf("garbage-hint-%d", i), &s, m, apps, TotalGFLOPS, 1, hint)
		checkWarmMatchesCold(t, fmt.Sprintf("garbage-hint-%d-floor0", i), &s, m, apps, TotalGFLOPS, 0, hint)
	}
	// Unpruned objective: hints must be inert there too.
	checkWarmMatchesCold(t, "min-app-objective", &s, m, apps, MinAppGFLOPS, 1, []int{1, 1, 1, 5})
}

// TestWarmStartInfeasible covers the ErrNoAllocation edges with hints
// present: the warm path must report exactly what the cold path does.
func TestWarmStartInfeasible(t *testing.T) {
	var s Search
	m := machine.PaperModel() // 8 cores per node
	apps := paperApps()       // floor 3 needs 12 cores per node
	checkWarmMatchesCold(t, "oversubscribed-floor", &s, m, apps, TotalGFLOPS, 3, []int{2, 2, 2, 2})
	bad := []App{{Name: "neg", AI: -2}}
	checkWarmMatchesCold(t, "invalid-app", &s, m, bad, TotalGFLOPS, 0, []int{1})
}

// TestWarmStartRandomized fuzzes the ±1 warm-start equivalence over
// random machines and app mixes (NUMA-bad included), floors 0-2: solve
// a base set cold, then check the +1 (append) and −1 (drop) neighbour
// solves warm-started from the base optimum against cold solves.
func TestWarmStartRandomized(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		warmStartRound(t, r)
	}
}

// warmStartRound is one randomized warm-start equivalence check, also
// wired into FuzzEvaluatorEquivalence so the checked-in corpus replays
// it. Machines stay small so the cold reference stays cheap.
func warmStartRound(t *testing.T, r *rand.Rand) {
	t.Helper()
	nNodes := 2 + r.Intn(2)
	m := &machine.Machine{Name: "warm-rand"}
	for i := 0; i < nNodes; i++ {
		m.Nodes = append(m.Nodes, machine.Node{
			Cores:        2 + r.Intn(5),
			PeakGFLOPS:   1 + 10*r.Float64(),
			MemBandwidth: 4 + 40*r.Float64(),
		})
	}
	if r.Intn(2) == 0 {
		m.LinkBandwidth = make([][]float64, nNodes)
		for i := range m.LinkBandwidth {
			m.LinkBandwidth[i] = make([]float64, nNodes)
			for j := range m.LinkBandwidth[i] {
				if i != j {
					m.LinkBandwidth[i][j] = 1 + 20*r.Float64()
				}
			}
		}
	}
	nApps := 2 + r.Intn(3)
	apps := make([]App, nApps)
	for i := range apps {
		apps[i] = App{Name: fmt.Sprintf("wapp%d", i), AI: pow2(r.Float64()*8 - 4)}
	}
	if r.Intn(2) == 0 {
		bad := r.Intn(nApps)
		apps[bad].Placement = NUMABad
		apps[bad].HomeNode = machine.NodeID(r.Intn(nNodes))
	}
	floor := r.Intn(3)
	var s Search
	prev, _, _, err := s.BestPerNodeCountsFloor(m, apps, TotalGFLOPS, floor)
	if err != nil {
		return // infeasible base (floors over-subscribe); nothing to warm-start
	}
	// +1: a newcomer appended, warm-started from the base optimum.
	newcomer := App{Name: "wapp-new", AI: pow2(r.Float64()*8 - 4)}
	if r.Intn(3) == 0 {
		newcomer.Placement = NUMABad
		newcomer.HomeNode = machine.NodeID(r.Intn(nNodes))
	}
	with := append(append([]App(nil), apps...), newcomer)
	checkWarmMatchesCold(t, fmt.Sprintf("rand/+1 floor=%d", floor), &s, m, with, TotalGFLOPS, floor, prev)
	// −1: one app dropped, warm-started from the base optimum minus its
	// entry.
	drop := r.Intn(nApps)
	rest := make([]App, 0, nApps-1)
	hint := make([]int, 0, nApps-1)
	for i := range apps {
		if i == drop {
			continue
		}
		rest = append(rest, apps[i])
		hint = append(hint, prev[i])
	}
	if len(rest) > 0 {
		checkWarmMatchesCold(t, fmt.Sprintf("rand/-1 floor=%d", floor), &s, m, rest, TotalGFLOPS, floor, hint)
	}
}
