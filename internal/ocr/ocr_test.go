package ocr

import (
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func TestZeroSlotEDTRuns(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	done := false
	edt := r.CreateEDT(&Template{Name: "hello", GFlop: 0.01}, 0)
	edt.OutputEvent().ev.OnSatisfy(func() { done = true })
	eng.RunUntil(0.5)
	if !done {
		t.Error("zero-slot EDT never completed")
	}
	if edt.State() != taskrt.TaskDone {
		t.Errorf("state = %v, want done", edt.State())
	}
	if r.EDTsCreated() != 1 || r.EDTsFinished() != 1 {
		t.Errorf("counters = %d/%d", r.EDTsCreated(), r.EDTsFinished())
	}
}

func TestEDTChainThroughEvents(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	tmpl := &Template{Name: "step", GFlop: 0.01}
	var order []int
	mk := func(id int, slots int) *EDT {
		e := r.CreateEDT(&Template{Name: tmpl.Name, GFlop: tmpl.GFlop, Work: nil}, slots)
		e.OutputEvent().ev.OnSatisfy(func() { order = append(order, id) })
		return e
	}
	// c depends on b depends on a.
	c := mk(3, 1)
	b := mk(2, 1)
	a := mk(1, 0)
	b.AddDependence(a.OutputEvent(), 0)
	c.AddDependence(b.OutputEvent(), 0)
	eng.RunUntil(1)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestEventPayloadFlowsToEDT(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	db := r.CreateDataBlock("input", 2, 3)
	var seen *DataBlock
	tmpl := &Template{
		Name: "consume",
		Work: func(deps []*DataBlock) (float64, float64) {
			seen = deps[0]
			return 0.01, 0.5
		},
	}
	edt := r.CreateEDT(tmpl, 1)
	ev := r.CreateEvent()
	edt.AddDependence(ev, 0)
	eng.RunUntil(0.1)
	if edt.State() == taskrt.TaskDone {
		t.Fatal("EDT ran before its event")
	}
	ev.Satisfy(db)
	eng.RunUntil(0.5)
	if seen != db {
		t.Error("payload did not reach the EDT's work function")
	}
	if ev.Payload() != db {
		t.Error("Payload() lost")
	}
}

func TestDataBlockDependenceSatisfiesImmediately(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	db := r.CreateDataBlock("d", 1, 2)
	edt := r.CreateEDT(&Template{Name: "e", GFlop: 0.01, AI: 0.5}, 1)
	edt.AddDependence(db, 0)
	eng.RunUntil(0.5)
	if edt.State() != taskrt.TaskDone {
		t.Error("EDT with data block dependence never ran")
	}
}

func TestEDTLocalityFollowsDataBlock(t *testing.T) {
	// OCR-Vx's NUMA awareness: an EDT acquiring a block on node 2 runs
	// on node 2 (the NUMA-aware scheduler routes by the dominant block;
	// strict locality keeps starved other-node workers from stealing).
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr", StrictLocality: true})
	db := r.CreateDataBlock("big", 4, 2)
	small := r.CreateDataBlock("small", 0.1, 0)
	var edts []*EDT
	for i := 0; i < 32; i++ {
		e := r.CreateEDT(&Template{Name: "k", GFlop: 0.02, AI: 0.5}, 2)
		e.AddDependence(db, 0)
		e.AddDependence(small, 1)
		edts = append(edts, e)
	}
	eng.RunUntil(2)
	local := 0
	for _, e := range edts {
		core, ok := e.task.ExecutedOn()
		if !ok {
			t.Fatal("EDT not executed")
		}
		if m.NodeOfCore(core) == 2 {
			local++
		}
	}
	if frac := float64(local) / float64(len(edts)); frac < 0.9 {
		t.Errorf("locality = %.2f, want >= 0.9", frac)
	}
}

func TestFinishEDTWaitsForChildren(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	tmpl := &Template{Name: "w", GFlop: 0.05}

	var scopeDone des.Time
	var lastChildDone des.Time
	parent := r.CreateFinishEDT(&Template{Name: "parent", GFlop: 0.01}, 0)
	// Children created in the scope; grandchild nested deeper.
	for i := 0; i < 4; i++ {
		child := parent.CreateChild(tmpl, 0)
		gc := child.CreateChild(tmpl, 0)
		gc.OutputEvent().ev.OnSatisfy(func() { lastChildDone = eng.Now() })
	}
	parent.OutputEvent().ev.OnSatisfy(func() { scopeDone = eng.Now() })
	eng.RunUntil(2)
	if scopeDone == 0 {
		t.Fatal("finish scope never completed")
	}
	if scopeDone < lastChildDone {
		t.Errorf("finish scope fired at %v before last child at %v", scopeDone, lastChildDone)
	}
}

func TestOCRMigrate(t *testing.T) {
	m := machine.SkylakeQuad()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr", BindMode: taskrt.BindCore})
	db := r.CreateDataBlock("data", 1, 0)
	moved := false
	if err := r.Migrate(db, 2, func() { moved = true }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1)
	if !moved || db.Node() != 2 {
		t.Errorf("migration failed: moved=%v node=%d", moved, db.Node())
	}
}

func TestPanics(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil template", func() { r.CreateEDT(nil, 0) })
	expectPanic("negative slots", func() { r.CreateEDT(&Template{Name: "x"}, -1) })
	expectPanic("negative block", func() { r.CreateDataBlock("x", -1, 0) })
	expectPanic("nil dep", func() { r.CreateEDT(&Template{Name: "x", GFlop: 1}, 1).AddDependence(nil, 0) })
	expectPanic("bad slot", func() {
		r.CreateEDT(&Template{Name: "x", GFlop: 1}, 1).AddDependence(r.CreateEvent(), 5)
	})
	expectPanic("bad source type", func() {
		r.CreateEDT(&Template{Name: "x", GFlop: 1}, 1).AddDependence(42, 0)
	})
	ev := r.CreateEvent()
	ev.Satisfy(nil)
	expectPanic("double satisfy", func() { ev.Satisfy(nil) })
	edt := r.CreateEDT(&Template{Name: "x", GFlop: 0.001}, 0) // launches immediately
	eng.RunUntil(0.1)
	expectPanic("dep after launch", func() { edt.AddDependence(r.CreateEvent(), 0) })
}

func TestStatsAndAccessors(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	if r.Task() == nil {
		t.Fatal("Task() nil")
	}
	db := r.CreateDataBlock("d", 2.5, 1)
	if db.SizeGB() != 2.5 || db.Node() != 1 {
		t.Error("data block accessors wrong")
	}
	for i := 0; i < 10; i++ {
		r.CreateEDT(&Template{Name: "t", GFlop: 0.01}, 0)
	}
	eng.RunUntil(1)
	if st := r.Stats(); st.TasksExecuted != 10 {
		t.Errorf("TasksExecuted = %d, want 10", st.TasksExecuted)
	}
}

// TestOCRUnderThreadControl: an OCR application behaves under the
// paper's option 3 like any task-runtime application.
func TestOCRUnderThreadControl(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	r := NewRuntime(o, Config{Name: "ocr"})
	tmpl := &Template{Name: "k", GFlop: 0.01}
	var feed func()
	feed = func() {
		e := r.CreateEDT(tmpl, 0)
		e.OutputEvent().ev.OnSatisfy(feed)
	}
	for i := 0; i < 64; i++ {
		feed()
	}
	if err := r.Task().SetNodeThreads([]int{2, 2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1)
	st := r.Stats()
	if st.Suspended != 28 {
		t.Errorf("suspended = %d, want 28", st.Suspended)
	}
	// ~4 cores * 10 GFLOPS.
	if st.GFlopDone < 36 || st.GFlopDone > 42 {
		t.Errorf("GFlopDone = %.1f, want ~40", st.GFlopDone)
	}
}
