// Package ocr provides an Open Community Runtime (OCR) flavored API on
// top of the task runtime — the programming model of OCR-Vx, the system
// the paper's experiments are built on (references [1], [3], [9]).
//
// The core OCR objects are reproduced in simplified form:
//
//   - DataBlocks: runtime-managed data with explicit NUMA affinity,
//     acquired by tasks through dependence slots;
//   - Events: once-satisfiable synchronization objects that may carry a
//     data block as payload;
//   - EDTs (event-driven tasks): tasks with a fixed number of
//     dependence slots; an EDT becomes ready when every slot is
//     satisfied (by an event or a pre-satisfied data block), executes
//     work derived from its template, and then satisfies its output
//     event;
//   - finish EDTs: EDTs whose output event fires only after the EDT
//     *and every child EDT created under it* complete (a latch scope).
//
// Because the runtime manages the data blocks, it can migrate them
// between NUMA nodes (see taskrt.MigrateBlock) — the capability the
// paper singles out as easy in OCR and very difficult in TBB.
package ocr

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

// Config configures the OCR runtime veneer.
type Config struct {
	// Name labels the OS process.
	Name string
	// BindMode and Scheduler select the worker layout; the defaults
	// (node-bound workers, NUMA-aware scheduler) match OCR-Vx's
	// NUMA-aware configuration.
	BindMode  taskrt.BindMode
	Scheduler taskrt.SchedulerKind
	// Workers is the worker count (0: one per core).
	Workers int
	// StrictLocality forbids remote stealing in the NUMA-aware
	// scheduler: EDTs only ever run on their data's node.
	StrictLocality bool
}

// Runtime is an OCR-style runtime instance.
type Runtime struct {
	rt *taskrt.Runtime

	edtsCreated  uint64
	edtsFinished uint64
}

// NewRuntime creates the runtime. Zero-value BindMode/Scheduler are
// replaced by OCR-Vx-like defaults (node-bound, NUMA-aware).
func NewRuntime(os *osched.OS, cfg Config) *Runtime {
	tc := taskrt.Config{
		Name:          cfg.Name,
		BindMode:      cfg.BindMode,
		Scheduler:     cfg.Scheduler,
		Workers:       cfg.Workers,
		NoRemoteSteal: cfg.StrictLocality,
	}
	if tc.BindMode == taskrt.BindNone {
		tc.BindMode = taskrt.BindNode
	}
	if tc.Scheduler == taskrt.FIFO {
		tc.Scheduler = taskrt.NUMAAware
	}
	return &Runtime{rt: taskrt.New(os, tc)}
}

// Task exposes the underlying task runtime (thread control, stats,
// migration).
func (r *Runtime) Task() *taskrt.Runtime { return r.rt }

// Stats returns the runtime snapshot.
func (r *Runtime) Stats() taskrt.Stats { return r.rt.Stats() }

// EDTsCreated returns the number of EDTs created.
func (r *Runtime) EDTsCreated() uint64 { return r.edtsCreated }

// EDTsFinished returns the number of EDTs completed.
func (r *Runtime) EDTsFinished() uint64 { return r.edtsFinished }

// DataBlock is an OCR data block: runtime-managed data with NUMA
// affinity.
type DataBlock struct {
	blk *taskrt.DataBlock
}

// CreateDataBlock allocates a data block of sizeGB on the given node.
func (r *Runtime) CreateDataBlock(name string, sizeGB float64, node machine.NodeID) *DataBlock {
	if sizeGB < 0 {
		panic("ocr: negative data block size")
	}
	return &DataBlock{blk: &taskrt.DataBlock{Name: name, Node: node, SizeGB: sizeGB}}
}

// Node returns the block's current NUMA node.
func (db *DataBlock) Node() machine.NodeID { return db.blk.Node }

// SizeGB returns the block's size.
func (db *DataBlock) SizeGB() float64 { return db.blk.SizeGB }

// Migrate moves the block to dst (asynchronously; onDone may be nil).
// The runtime manages the data, so this is a first-class operation —
// the paper's key OCR-vs-TBB distinction.
func (r *Runtime) Migrate(db *DataBlock, dst machine.NodeID, onDone func()) error {
	_, err := r.rt.MigrateBlock(db.blk, dst, onDone)
	return err
}

// Event is a once event, optionally carrying a data block payload.
type Event struct {
	ev      *taskrt.Event
	payload *DataBlock
}

// CreateEvent creates an unsatisfied once event.
func (r *Runtime) CreateEvent() *Event {
	return &Event{ev: r.rt.NewEvent()}
}

// Satisfy fires the event with an optional payload (nil allowed).
// Satisfying twice panics, matching OCR once-event semantics.
func (e *Event) Satisfy(payload *DataBlock) {
	e.payload = payload
	e.ev.Satisfy()
}

// Satisfied reports whether the event fired.
func (e *Event) Satisfied() bool { return e.ev.Satisfied() }

// OnSatisfy registers fn to run when the event fires (immediately if it
// already did).
func (e *Event) OnSatisfy(fn func()) { e.ev.OnSatisfy(fn) }

// Payload returns the data block the event carried (nil if none or not
// yet satisfied).
func (e *Event) Payload() *DataBlock { return e.payload }

// Template describes a family of EDTs: its work is a function of the
// data blocks acquired through the dependence slots.
type Template struct {
	// Name labels EDT instances.
	Name string
	// GFlop and AI give the fixed work per EDT when Work is nil.
	GFlop float64
	AI    float64
	// Work, when set, computes (gflop, ai) from the acquired blocks.
	Work func(deps []*DataBlock) (gflop, ai float64)
}

// EDT is an event-driven task.
type EDT struct {
	r        *Runtime
	tmpl     *Template
	deps     []*DataBlock // slot payloads
	slots    int
	pending  int
	task     *taskrt.Task
	out      *Event
	launched bool
	finish   *taskrt.LatchEvent // non-nil for finish EDTs
	parent   *EDT
}

// CreateEDT creates an EDT with the given number of dependence slots.
// The EDT launches automatically once every slot is satisfied; an EDT
// with zero slots launches immediately.
func (r *Runtime) CreateEDT(tmpl *Template, slots int) *EDT {
	return r.createEDT(tmpl, slots, false, nil)
}

// CreateFinishEDT creates an EDT whose output event fires only after
// the EDT and all child EDTs created via CreateChild complete.
func (r *Runtime) CreateFinishEDT(tmpl *Template, slots int) *EDT {
	return r.createEDT(tmpl, slots, true, nil)
}

// CreateChild creates an EDT inside this EDT's finish scope (this EDT
// or its nearest finish ancestor must be a finish EDT for the scope to
// matter; otherwise the child is an ordinary EDT).
func (e *EDT) CreateChild(tmpl *Template, slots int) *EDT {
	return e.r.createEDT(tmpl, slots, false, e)
}

func (r *Runtime) createEDT(tmpl *Template, slots int, finish bool, parent *EDT) *EDT {
	if tmpl == nil {
		panic("ocr: nil template")
	}
	if slots < 0 {
		panic("ocr: negative slot count")
	}
	r.edtsCreated++
	e := &EDT{
		r:       r,
		tmpl:    tmpl,
		deps:    make([]*DataBlock, slots),
		slots:   slots,
		pending: slots,
		out:     r.CreateEvent(),
		parent:  parent,
	}
	if finish {
		e.finish = r.rt.NewLatch(1) // the EDT itself
	}
	// Joining an ancestor finish scope keeps that scope open until this
	// EDT completes.
	if scope := e.finishScope(); scope != nil {
		scope.Up()
	}
	if slots == 0 {
		e.launch()
	}
	return e
}

// finishScope returns the nearest enclosing finish latch (not the EDT's
// own), or nil.
func (e *EDT) finishScope() *taskrt.LatchEvent {
	for p := e.parent; p != nil; p = p.parent {
		if p.finish != nil {
			return p.finish
		}
	}
	return nil
}

// OutputEvent returns the event satisfied when the EDT completes (for
// finish EDTs: when its whole scope completes).
func (e *EDT) OutputEvent() *Event {
	if e.finish != nil {
		return &Event{ev: e.finish.Event()}
	}
	return e.out
}

// AddDependence satisfies slot i from an event (when it fires) or
// immediately from a data block. Slots are 0-based.
func (e *EDT) AddDependence(src any, slot int) {
	if e.launched {
		panic("ocr: AddDependence after launch")
	}
	if slot < 0 || slot >= e.slots {
		panic(fmt.Sprintf("ocr: slot %d out of range (EDT has %d)", slot, e.slots))
	}
	switch s := src.(type) {
	case *DataBlock:
		e.satisfySlot(slot, s)
	case *Event:
		slotIdx := slot
		s.ev.OnSatisfy(func() { e.satisfySlot(slotIdx, s.payload) })
	case nil:
		panic("ocr: nil dependence source")
	default:
		panic(fmt.Sprintf("ocr: unsupported dependence source %T", src))
	}
}

func (e *EDT) satisfySlot(slot int, payload *DataBlock) {
	if e.deps[slot] == nil && payload != nil {
		e.deps[slot] = payload
	}
	e.pending--
	if e.pending == 0 {
		e.launch()
	}
	if e.pending < 0 {
		panic("ocr: slot satisfied twice")
	}
}

// launch builds and submits the underlying task.
func (e *EDT) launch() {
	e.launched = true
	gflop, ai := e.tmpl.GFlop, e.tmpl.AI
	if e.tmpl.Work != nil {
		gflop, ai = e.tmpl.Work(e.deps)
	}
	// The task reads the largest acquired block (dominant traffic).
	var data *taskrt.DataBlock
	for _, db := range e.deps {
		if db == nil {
			continue
		}
		if data == nil || db.blk.SizeGB > data.SizeGB {
			data = db.blk
		}
	}
	e.task = e.r.rt.NewTask(e.tmpl.Name, gflop, ai, data)
	e.task.OnComplete = func() {
		e.r.edtsFinished++
		e.out.Satisfy(nil)
		if e.finish != nil {
			e.finish.Down() // the EDT's own slot in its scope
		}
		if scope := e.finishScope(); scope != nil {
			scope.Down()
		}
	}
	e.r.rt.Submit(e.task)
}

// State returns the underlying task's state (TaskCreated while waiting
// for slots).
func (e *EDT) State() taskrt.TaskState {
	if e.task == nil {
		return taskrt.TaskWaiting
	}
	return e.task.State()
}

// ExecutedOn returns the core that ran the EDT, once done.
func (e *EDT) ExecutedOn() (machine.CoreID, bool) {
	if e.task == nil {
		return 0, false
	}
	return e.task.ExecutedOn()
}
