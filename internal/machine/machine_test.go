package machine

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidateOK(t *testing.T) {
	for _, m := range []*Machine{PaperModel(), PaperModelNUMABad(), SkylakeQuad(), KNLFlat(), KNLSNC4()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: unexpected validation error: %v", m.Name, err)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		m    Machine
	}{
		{"empty", Machine{}},
		{"zero cores", Machine{Nodes: []Node{{Cores: 0, PeakGFLOPS: 1, MemBandwidth: 1}}}},
		{"zero gflops", Machine{Nodes: []Node{{Cores: 1, PeakGFLOPS: 0, MemBandwidth: 1}}}},
		{"zero bw", Machine{Nodes: []Node{{Cores: 1, PeakGFLOPS: 1, MemBandwidth: 0}}}},
		{"bad matrix rows", Machine{
			Nodes:         []Node{{Cores: 1, PeakGFLOPS: 1, MemBandwidth: 1}},
			LinkBandwidth: [][]float64{{0}, {0}},
		}},
		{"bad matrix cols", Machine{
			Nodes:         []Node{{Cores: 1, PeakGFLOPS: 1, MemBandwidth: 1}, {Cores: 1, PeakGFLOPS: 1, MemBandwidth: 1}},
			LinkBandwidth: [][]float64{{0}, {0}},
		}},
		{"zero link", Machine{
			Nodes:         []Node{{Cores: 1, PeakGFLOPS: 1, MemBandwidth: 1}, {Cores: 1, PeakGFLOPS: 1, MemBandwidth: 1}},
			LinkBandwidth: [][]float64{{0, 0}, {1, 0}},
		}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", c.name)
		}
	}
}

func TestTotals(t *testing.T) {
	m := PaperModel()
	if got := m.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := m.TotalCores(); got != 32 {
		t.Errorf("TotalCores = %d, want 32", got)
	}
	if got := m.PeakGFLOPS(); got != 320 {
		t.Errorf("PeakGFLOPS = %g, want 320", got)
	}
	if got := m.TotalBandwidth(); got != 128 {
		t.Errorf("TotalBandwidth = %g, want 128", got)
	}
}

func TestNodeOfCore(t *testing.T) {
	m := PaperModel()
	cases := []struct {
		core CoreID
		node NodeID
	}{{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {31, 3}}
	for _, c := range cases {
		if got := m.NodeOfCore(c.core); got != c.node {
			t.Errorf("NodeOfCore(%d) = %d, want %d", c.core, got, c.node)
		}
	}
}

func TestNodeOfCorePanics(t *testing.T) {
	m := PaperModel()
	for _, bad := range []CoreID{-1, 32, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NodeOfCore(%d): expected panic", bad)
				}
			}()
			m.NodeOfCore(bad)
		}()
	}
}

func TestCoresOfNode(t *testing.T) {
	m := PaperModel()
	cores := m.CoresOfNode(2)
	if len(cores) != 8 {
		t.Fatalf("CoresOfNode(2) has %d cores, want 8", len(cores))
	}
	if cores[0] != 16 || cores[7] != 23 {
		t.Errorf("CoresOfNode(2) = %v, want 16..23", cores)
	}
	if got := m.FirstCoreOfNode(3); got != 24 {
		t.Errorf("FirstCoreOfNode(3) = %d, want 24", got)
	}
}

func TestCoresOfNodeHeterogeneous(t *testing.T) {
	m := &Machine{Name: "het", Nodes: []Node{
		{Cores: 2, PeakGFLOPS: 1, MemBandwidth: 1},
		{Cores: 5, PeakGFLOPS: 1, MemBandwidth: 1},
		{Cores: 3, PeakGFLOPS: 1, MemBandwidth: 1},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.NodeOfCore(6); got != 1 {
		t.Errorf("NodeOfCore(6) = %d, want 1", got)
	}
	if got := m.NodeOfCore(7); got != 2 {
		t.Errorf("NodeOfCore(7) = %d, want 2", got)
	}
	cores := m.CoresOfNode(1)
	if cores[0] != 2 || cores[len(cores)-1] != 6 {
		t.Errorf("CoresOfNode(1) = %v, want 2..6", cores)
	}
}

func TestLink(t *testing.T) {
	m := SkylakeQuad()
	if got := m.Link(0, 1); got != 10 {
		t.Errorf("Link(0,1) = %g, want 10", got)
	}
	if got := m.Link(2, 2); got != NoLinkLimit {
		t.Errorf("Link(2,2) = %g, want NoLinkLimit", got)
	}
	unlimited := PaperModel()
	if got := unlimited.Link(0, 3); got != NoLinkLimit {
		t.Errorf("unconstrained Link(0,3) = %g, want NoLinkLimit", got)
	}
}

func TestClone(t *testing.T) {
	m := SkylakeQuad()
	cp := m.Clone()
	cp.Nodes[0].Cores = 99
	cp.LinkBandwidth[0][1] = 1234
	if m.Nodes[0].Cores == 99 {
		t.Error("Clone shares Nodes slice")
	}
	if m.LinkBandwidth[0][1] == 1234 {
		t.Error("Clone shares LinkBandwidth")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := SkylakeQuad()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Machine
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || back.NumNodes() != m.NumNodes() || back.TotalCores() != m.TotalCores() {
		t.Errorf("round trip mismatch: %+v vs %+v", back, m)
	}
	if back.Link(0, 1) != 10 {
		t.Errorf("round trip link = %g, want 10", back.Link(0, 1))
	}
}

func TestJSONUnmarshalValidates(t *testing.T) {
	var m Machine
	if err := json.Unmarshal([]byte(`{"name":"bad","nodes":[]}`), &m); err == nil {
		t.Error("expected validation error for empty nodes")
	}
}

func TestUniformZeroLink(t *testing.T) {
	m := Uniform("u", 2, 4, 1, 10, 0)
	if m.LinkBandwidth != nil {
		t.Error("linkBW<=0 should leave link matrix nil")
	}
}

// Property: every core maps to a node that owns it, and CoresOfNode is
// the inverse of NodeOfCore.
func TestCoreNodeInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(8)
		m := &Machine{Name: "prop"}
		for i := 0; i < nodes; i++ {
			m.Nodes = append(m.Nodes, Node{Cores: 1 + rng.Intn(16), PeakGFLOPS: 1, MemBandwidth: 1})
		}
		for n := NodeID(0); int(n) < nodes; n++ {
			for _, c := range m.CoresOfNode(n) {
				if m.NodeOfCore(c) != n {
					return false
				}
			}
		}
		// Every core appears exactly once across all nodes.
		seen := map[CoreID]bool{}
		for n := NodeID(0); int(n) < nodes; n++ {
			for _, c := range m.CoresOfNode(n) {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
		}
		return len(seen) == m.TotalCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := PaperModel().String()
	if s == "" {
		t.Error("empty String()")
	}
}
