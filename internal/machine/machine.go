// Package machine describes NUMA machine topologies used by both the
// analytic roofline model and the discrete-event simulator.
//
// A Machine is a set of NUMA nodes, each with a number of CPU cores, a
// peak per-core compute rate, and a local memory controller with a peak
// bandwidth. Nodes are connected by point-to-point links with their own
// peak bandwidths; accessing another node's memory is limited by the link
// between the two nodes in addition to the target controller's bandwidth.
package machine

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// NodeID identifies a NUMA node within a Machine.
type NodeID int

// CoreID identifies a CPU core within a Machine. Cores are numbered
// globally: node n owns cores [n*CoresPerNode, (n+1)*CoresPerNode).
type CoreID int

// Node describes one NUMA node.
type Node struct {
	// Cores is the number of CPU cores attached to this node.
	Cores int `json:"cores"`
	// PeakGFLOPS is the peak compute rate of one core (GFLOP/s).
	PeakGFLOPS float64 `json:"peak_gflops"`
	// MemBandwidth is the peak local memory bandwidth (GB/s) of the
	// node's memory controller, shared by all accessors.
	MemBandwidth float64 `json:"mem_bandwidth"`
}

// Machine is a complete NUMA machine description.
type Machine struct {
	// Name labels the machine in reports.
	Name string `json:"name"`
	// Nodes lists the NUMA nodes. Must be non-empty.
	Nodes []Node `json:"nodes"`
	// LinkBandwidth[i][j] is the peak bandwidth (GB/s) of the
	// point-to-point link from node i's cores to node j's memory.
	// The diagonal is ignored (local access is limited only by the
	// controller). A nil matrix means "infinite" links.
	LinkBandwidth [][]float64 `json:"link_bandwidth,omitempty"`
}

// Validate checks internal consistency. It returns a descriptive error
// for the first problem found.
func (m *Machine) Validate() error {
	if len(m.Nodes) == 0 {
		return errors.New("machine: no NUMA nodes")
	}
	for i, n := range m.Nodes {
		if n.Cores <= 0 {
			return fmt.Errorf("machine: node %d has %d cores", i, n.Cores)
		}
		if n.PeakGFLOPS <= 0 {
			return fmt.Errorf("machine: node %d has non-positive peak GFLOPS %g", i, n.PeakGFLOPS)
		}
		if n.MemBandwidth <= 0 {
			return fmt.Errorf("machine: node %d has non-positive bandwidth %g", i, n.MemBandwidth)
		}
	}
	if m.LinkBandwidth != nil {
		if len(m.LinkBandwidth) != len(m.Nodes) {
			return fmt.Errorf("machine: link matrix has %d rows, want %d", len(m.LinkBandwidth), len(m.Nodes))
		}
		for i, row := range m.LinkBandwidth {
			if len(row) != len(m.Nodes) {
				return fmt.Errorf("machine: link matrix row %d has %d entries, want %d", i, len(row), len(m.Nodes))
			}
			for j, bw := range row {
				if i != j && bw <= 0 {
					return fmt.Errorf("machine: link %d->%d has non-positive bandwidth %g", i, j, bw)
				}
			}
		}
	}
	return nil
}

// NumNodes returns the number of NUMA nodes.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// TotalCores returns the total number of CPU cores across all nodes.
func (m *Machine) TotalCores() int {
	total := 0
	for _, n := range m.Nodes {
		total += n.Cores
	}
	return total
}

// NodeOfCore returns the NUMA node that owns the given global core ID.
// It panics if the core ID is out of range.
func (m *Machine) NodeOfCore(c CoreID) NodeID {
	id := int(c)
	if id < 0 {
		panic(fmt.Sprintf("machine: negative core id %d", id))
	}
	for i, n := range m.Nodes {
		if id < n.Cores {
			return NodeID(i)
		}
		id -= n.Cores
	}
	panic(fmt.Sprintf("machine: core id %d out of range (total %d)", c, m.TotalCores()))
}

// CoresOfNode returns the global core IDs belonging to the given node.
func (m *Machine) CoresOfNode(n NodeID) []CoreID {
	if int(n) < 0 || int(n) >= len(m.Nodes) {
		panic(fmt.Sprintf("machine: node id %d out of range", n))
	}
	start := 0
	for i := 0; i < int(n); i++ {
		start += m.Nodes[i].Cores
	}
	cores := make([]CoreID, m.Nodes[n].Cores)
	for i := range cores {
		cores[i] = CoreID(start + i)
	}
	return cores
}

// FirstCoreOfNode returns the lowest global core ID on the node.
func (m *Machine) FirstCoreOfNode(n NodeID) CoreID {
	start := 0
	for i := 0; i < int(n); i++ {
		start += m.Nodes[i].Cores
	}
	return CoreID(start)
}

// Link returns the peak bandwidth of the link from node i's cores to
// node j's memory. Local access (i == j) and machines without a link
// matrix report +Inf-like "no limit" as a very large number.
func (m *Machine) Link(i, j NodeID) float64 {
	if i == j || m.LinkBandwidth == nil {
		return NoLinkLimit
	}
	return m.LinkBandwidth[i][j]
}

// NoLinkLimit is the bandwidth reported for unconstrained links.
// It is large enough to never be the bottleneck for realistic machines.
const NoLinkLimit = 1e18

// PeakGFLOPS returns the machine's aggregate peak compute rate.
func (m *Machine) PeakGFLOPS() float64 {
	total := 0.0
	for _, n := range m.Nodes {
		total += float64(n.Cores) * n.PeakGFLOPS
	}
	return total
}

// TotalBandwidth returns the machine's aggregate local memory bandwidth.
func (m *Machine) TotalBandwidth() float64 {
	total := 0.0
	for _, n := range m.Nodes {
		total += n.MemBandwidth
	}
	return total
}

// String returns a short human-readable summary.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d nodes", m.Name, len(m.Nodes))
	if len(m.Nodes) > 0 {
		n := m.Nodes[0]
		fmt.Fprintf(&b, " x %d cores, %.3g GFLOPS/core, %.4g GB/s/node", n.Cores, n.PeakGFLOPS, n.MemBandwidth)
	}
	return b.String()
}

// Clone returns a deep copy of the machine.
func (m *Machine) Clone() *Machine {
	cp := &Machine{Name: m.Name, Nodes: append([]Node(nil), m.Nodes...)}
	if m.LinkBandwidth != nil {
		cp.LinkBandwidth = make([][]float64, len(m.LinkBandwidth))
		for i, row := range m.LinkBandwidth {
			cp.LinkBandwidth[i] = append([]float64(nil), row...)
		}
	}
	return cp
}

// MarshalJSON implements json.Marshaler (plain struct encoding; defined
// so the symmetric UnmarshalJSON can validate).
func (m *Machine) MarshalJSON() ([]byte, error) {
	type plain Machine
	return json.Marshal((*plain)(m))
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (m *Machine) UnmarshalJSON(data []byte) error {
	type plain Machine
	if err := json.Unmarshal(data, (*plain)(m)); err != nil {
		return err
	}
	return m.Validate()
}

// Uniform builds a machine with identical nodes and a full link mesh of
// uniform bandwidth. linkBW <= 0 means unconstrained links.
func Uniform(name string, nodes, coresPerNode int, gflopsPerCore, nodeBW, linkBW float64) *Machine {
	m := &Machine{Name: name}
	for i := 0; i < nodes; i++ {
		m.Nodes = append(m.Nodes, Node{Cores: coresPerNode, PeakGFLOPS: gflopsPerCore, MemBandwidth: nodeBW})
	}
	if linkBW > 0 {
		m.LinkBandwidth = make([][]float64, nodes)
		for i := range m.LinkBandwidth {
			m.LinkBandwidth[i] = make([]float64, nodes)
			for j := range m.LinkBandwidth[i] {
				if i != j {
					m.LinkBandwidth[i][j] = linkBW
				}
			}
		}
	}
	return m
}

// PaperModel is the model machine used in the paper's Tables I and II:
// 4 NUMA nodes, 8 cores each, peak 10 GFLOPS per core, 32 GB/s per node,
// unconstrained links (all examples are NUMA-perfect).
func PaperModel() *Machine {
	return Uniform("paper-model-4x8", 4, 8, 10, 32, 0)
}

// PaperModelNUMABad is the machine for the paper's NUMA-bad example
// (Fig. 3): same layout, but a 60 GB/s node bandwidth and 10 GB/s links
// chosen so the in-text numbers (~138 vs 150 GFLOPS) come out.
func PaperModelNUMABad() *Machine {
	return Uniform("paper-model-numabad-4x8", 4, 8, 10, 60, 10)
}

// SkylakeQuad is the calibrated machine from the paper's Section III.B:
// four Xeon Gold 6138 sockets modeled as 4 NUMA nodes x 20 cores,
// 100 GB/s per node, 0.29 GFLOPS per thread. The 10 GB/s link bandwidth
// is inferred from the Table III cross-node model value (13.98 GFLOPS).
func SkylakeQuad() *Machine {
	return Uniform("skylake-quad-4x20", 4, 20, 0.29, 100, 10)
}

// KNLFlat models a Knights Landing style machine in flat/quadrant-like
// mode referenced by the paper's NUMA discussion: a single node with many
// cores (NUMA can be "switched off").
func KNLFlat() *Machine {
	return Uniform("knl-flat-1x64", 1, 64, 3, 400, 0)
}

// KNLSNC4 models KNL with sub-NUMA clustering into 4 nodes.
func KNLSNC4() *Machine {
	return Uniform("knl-snc4-4x16", 4, 16, 3, 100, 25)
}
