// Package calibrate reproduces the paper's Section III.B methodology:
// instead of deriving machine parameters from spec sheets, it measures
// a synthetic benchmark and estimates the effective peak compute rate
// and memory bandwidth from the observations ("we have ... estimated
// the parameters of the machine from the measured performance of the
// application"), exactly as the paper fits 100 GB/s and 0.29 GFLOPS per
// thread from the even-allocation run.
//
// It also provides a STREAM-like probe (McCalpin's benchmark, the
// paper's reference for remote-memory behaviour) that measures local
// node bandwidth and the inter-node link bandwidth matrix of a
// simulated machine.
package calibrate

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/roofline"
)

// StreamResult holds measured bandwidths in GB/s.
type StreamResult struct {
	// Node[i] is node i's measured local bandwidth.
	Node []float64
	// Link[i][j] is the measured bandwidth from cores on node i to
	// memory on node j (diagonal = local measurement).
	Link [][]float64
}

// streamAI is small enough that every thread is bandwidth-bound.
const streamAI = 1.0 / 1024

// STREAM measures the machine's local and remote bandwidths by running
// saturating memory-bound threads for the given duration per probe.
// The duration must be positive: a zero-or-negative probe would divide
// by it, and silently substituting a default would hide a caller bug
// behind a plausible-looking measurement.
func STREAM(m *machine.Machine, osCfg osched.Config, duration des.Time) (*StreamResult, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("calibrate: STREAM probe duration must be positive, got %v", duration)
	}
	n := m.NumNodes()
	res := &StreamResult{Node: make([]float64, n), Link: make([][]float64, n)}
	for i := range res.Link {
		res.Link[i] = make([]float64, n)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			bw := measureBandwidth(m, osCfg, machine.NodeID(src), machine.NodeID(dst), duration)
			res.Link[src][dst] = bw
			if src == dst {
				res.Node[src] = bw
			}
		}
	}
	return res, nil
}

// measureBandwidth runs one probe: all cores of src stream from dst's
// memory.
func measureBandwidth(m *machine.Machine, osCfg osched.Config, src, dst machine.NodeID, duration des.Time) float64 {
	eng := des.NewEngine(7)
	osCfg.Machine = m
	o := osched.New(eng, osCfg)
	o.Start()
	p := o.NewProcess("stream")
	memNode := dst
	for _, c := range m.CoresOfNode(src) {
		p.NewThread("s", osched.RunnerFunc(func(*osched.Thread) osched.Work {
			return osched.Work{Kind: osched.WorkCompute, GFlop: 1e9, AI: streamAI, MemNode: memNode}
		}), osched.SingleCore(m, c))
	}
	eng.RunUntil(duration)
	// bytes = flops / AI.
	return p.GFlopDone() / streamAI / float64(duration)
}

// Estimate is a fitted machine parameterization.
type Estimate struct {
	// PeakGFLOPS is the effective per-thread compute rate.
	PeakGFLOPS float64
	// NodeBandwidth is the effective per-node memory bandwidth (GB/s).
	NodeBandwidth float64
}

// Machine builds a uniform machine with the estimated parameters,
// copying node/core counts and link bandwidths from the template.
func (e Estimate) Machine(template *machine.Machine, linkBW float64) *machine.Machine {
	return machine.Uniform(template.Name+"-fitted", template.NumNodes(), template.Nodes[0].Cores,
		e.PeakGFLOPS, e.NodeBandwidth, linkBW)
}

// FitEvenAllocation estimates machine parameters from the measured
// per-application GFLOPS of an even-allocation run, following the
// paper: the most compute-bound application runs at the core's peak
// (giving PeakGFLOPS directly), and the node bandwidth is the value
// under which the analytic model reproduces the memory-bound
// applications' measured rates (found by bisection — the model's output
// grows monotonically with bandwidth).
//
// apps and counts describe the run (uniform per-node thread counts);
// measured[i] is application i's machine-wide GFLOPS. The template
// machine supplies node/core counts only.
func FitEvenAllocation(template *machine.Machine, apps []roofline.App, counts []int, measured []float64) (Estimate, error) {
	if len(apps) != len(counts) || len(apps) != len(measured) {
		return Estimate{}, fmt.Errorf("calibrate: mismatched lengths (%d apps, %d counts, %d measurements)",
			len(apps), len(counts), len(measured))
	}
	// The highest-AI application is the compute-bound reference.
	comp := 0
	for i, a := range apps {
		if a.AI > apps[comp].AI {
			comp = i
		}
	}
	threads := counts[comp] * template.NumNodes()
	if threads == 0 || measured[comp] <= 0 {
		return Estimate{}, fmt.Errorf("calibrate: compute-bound app has no threads or no measurement")
	}
	peak := measured[comp] / float64(threads)

	// Most memory-bound application anchors the bandwidth fit.
	mem := 0
	for i, a := range apps {
		if a.AI < apps[mem].AI {
			mem = i
		}
	}
	if mem == comp {
		return Estimate{}, fmt.Errorf("calibrate: need both memory- and compute-bound applications")
	}
	target := measured[mem]
	if target <= 0 {
		return Estimate{}, fmt.Errorf("calibrate: memory-bound app has no measurement")
	}

	predict := func(bw float64) float64 {
		m := machine.Uniform("fit", template.NumNodes(), template.Nodes[0].Cores, peak, bw, 0)
		al, err := roofline.PerNodeCounts(m, counts)
		if err != nil {
			return 0
		}
		r, err := roofline.Evaluate(m, apps, al)
		if err != nil {
			return 0
		}
		return r.AppGFLOPS[mem]
	}

	// Bracket the bandwidth.
	lo, hi := 1e-6, 1.0
	for predict(hi) < target && hi < 1e9 {
		hi *= 2
	}
	if predict(hi) < target {
		return Estimate{}, fmt.Errorf("calibrate: measured %g GFLOPS unreachable at any bandwidth (AI too low?)", target)
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if predict(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Estimate{PeakGFLOPS: peak, NodeBandwidth: (lo + hi) / 2}, nil
}

// Prediction compares a fitted model against a measurement.
type Prediction struct {
	Scenario  string
	Model     float64
	Measured  float64
	RelErrPct float64
}

// Validate evaluates the fitted machine on scenarios and reports
// model-vs-measured errors, mirroring the paper's Table III check.
func Validate(fitted *machine.Machine, scenarios []struct {
	Name     string
	Apps     []roofline.App
	Alloc    roofline.Allocation
	Measured float64
}) ([]Prediction, error) {
	var out []Prediction
	for _, s := range scenarios {
		r, err := roofline.Evaluate(fitted, s.Apps, s.Alloc)
		if err != nil {
			return nil, fmt.Errorf("calibrate: scenario %s: %w", s.Name, err)
		}
		p := Prediction{Scenario: s.Name, Model: r.TotalGFLOPS, Measured: s.Measured}
		if s.Measured != 0 {
			p.RelErrPct = 100 * (r.TotalGFLOPS - s.Measured) / s.Measured
		}
		out = append(out, p)
	}
	return out, nil
}
