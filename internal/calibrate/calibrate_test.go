package calibrate

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/roofline"
)

func desEngine() *des.Engine { return des.NewEngine(1) }

func zeroCostOS() osched.Config {
	return osched.Config{
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	}
}

func TestSTREAMMeasuresLocalBandwidth(t *testing.T) {
	m := machine.SkylakeQuad() // 100 GB/s nodes, 10 GB/s links
	res, err := STREAM(m, zeroCostOS(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, bw := range res.Node {
		if math.Abs(bw-100) > 3 {
			t.Errorf("node %d measured %.1f GB/s, want ~100", i, bw)
		}
	}
}

func TestSTREAMMeasuresLinks(t *testing.T) {
	m := machine.SkylakeQuad()
	res, err := STREAM(m, zeroCostOS(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Link {
		for j := range res.Link[i] {
			want := 100.0
			if i != j {
				want = 10
			}
			if math.Abs(res.Link[i][j]-want) > want*0.05 {
				t.Errorf("link %d->%d measured %.2f GB/s, want ~%.0f", i, j, res.Link[i][j], want)
			}
		}
	}
}

func TestSTREAMRejectsNonPositiveDuration(t *testing.T) {
	m := machine.SkylakeQuad()
	for _, d := range []des.Time{0, -0.05} {
		if res, err := STREAM(m, zeroCostOS(), d); err == nil {
			t.Errorf("STREAM with duration %v: got %+v, want an error", d, res)
		}
	}
}

func TestSTREAMDegenerateSingleNode(t *testing.T) {
	// A 1-node machine has no links to probe: the result must be a 1x1
	// matrix whose only entry is the local bandwidth, not a crash or an
	// empty matrix.
	m := machine.Uniform("uma", 1, 8, 10, 100, 0)
	res, err := STREAM(m, zeroCostOS(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Node) != 1 || len(res.Link) != 1 || len(res.Link[0]) != 1 {
		t.Fatalf("1-node probe shape: %d nodes, %dx%d links, want 1 and 1x1", len(res.Node), len(res.Link), len(res.Link[0]))
	}
	if math.Abs(res.Node[0]-100) > 3 {
		t.Errorf("1-node local bandwidth %.1f GB/s, want ~100", res.Node[0])
	}
	if res.Link[0][0] != res.Node[0] {
		t.Errorf("diagonal %.2f != node measurement %.2f", res.Link[0][0], res.Node[0])
	}
}

func TestFitRecoversKnownParameters(t *testing.T) {
	// Generate "measurements" from the analytic model on the true
	// machine; the fit must recover its parameters.
	truth := machine.SkylakeQuad() // peak 0.29, 100 GB/s
	apps := []roofline.App{
		{Name: "m1", AI: 1.0 / 32}, {Name: "m2", AI: 1.0 / 32}, {Name: "m3", AI: 1.0 / 32},
		{Name: "c", AI: 1},
	}
	counts := []int{5, 5, 5, 5}
	r := roofline.MustEvaluate(truth, apps, roofline.MustPerNodeCounts(truth, counts))
	est, err := FitEvenAllocation(truth, apps, counts, r.AppGFLOPS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.PeakGFLOPS-0.29) > 0.001 {
		t.Errorf("fitted peak = %.4f, want 0.29", est.PeakGFLOPS)
	}
	if math.Abs(est.NodeBandwidth-100) > 0.5 {
		t.Errorf("fitted bandwidth = %.2f, want 100", est.NodeBandwidth)
	}
}

func TestFitFromSimulatedMeasurement(t *testing.T) {
	// Full paper methodology: measure the even-allocation scenario on
	// the simulator, fit parameters, and predict the uneven scenario.
	truth := machine.SkylakeQuad()
	apps := []roofline.App{
		{Name: "m1", AI: 1.0 / 32}, {Name: "m2", AI: 1.0 / 32}, {Name: "m3", AI: 1.0 / 32},
		{Name: "c", AI: 1},
	}
	counts := []int{5, 5, 5, 5}
	measured := simulateScenario(t, truth, apps, counts)

	est, err := FitEvenAllocation(truth, apps, counts, measured)
	if err != nil {
		t.Fatal(err)
	}
	fitted := est.Machine(truth, 10)

	// Predict scenario 1 (1,1,1,17) with the fitted machine and check
	// against its simulation.
	pred := roofline.MustEvaluate(fitted, apps, roofline.MustPerNodeCounts(fitted, []int{1, 1, 1, 17}))
	meas := simulateScenario(t, truth, apps, []int{1, 1, 1, 17})
	total := 0.0
	for _, g := range meas {
		total += g
	}
	if rel := math.Abs(pred.TotalGFLOPS-total) / total; rel > 0.05 {
		t.Errorf("fitted prediction %.3f vs simulated %.3f (%.1f%% off)", pred.TotalGFLOPS, total, rel*100)
	}
}

// simulateScenario measures per-app GFLOPS for a uniform per-node
// allocation on the simulator (1 second).
func simulateScenario(t *testing.T, m *machine.Machine, apps []roofline.App, counts []int) []float64 {
	t.Helper()
	eng := desEngine()
	cfg := zeroCostOS()
	cfg.Machine = m
	o := osched.New(eng, cfg)
	o.Start()
	procs := make([]*osched.Process, len(apps))
	for i := range apps {
		procs[i] = o.NewProcess(apps[i].Name)
	}
	for node := 0; node < m.NumNodes(); node++ {
		cores := m.CoresOfNode(machine.NodeID(node))
		next := 0
		for i, app := range apps {
			target := osched.LocalNode
			if app.Placement == roofline.NUMABad {
				target = app.HomeNode
			}
			ai := app.AI
			for k := 0; k < counts[i]; k++ {
				procs[i].NewThread("w", osched.RunnerFunc(func(*osched.Thread) osched.Work {
					return osched.Work{Kind: osched.WorkCompute, GFlop: 1e9, AI: ai, MemNode: target}
				}), osched.SingleCore(m, cores[next]))
				next++
			}
		}
	}
	eng.RunUntil(1)
	out := make([]float64, len(apps))
	for i, p := range procs {
		out[i] = p.GFlopDone()
	}
	return out
}

func TestFitErrors(t *testing.T) {
	m := machine.SkylakeQuad()
	apps := []roofline.App{{Name: "a", AI: 0.1}, {Name: "b", AI: 1}}
	if _, err := FitEvenAllocation(m, apps, []int{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := FitEvenAllocation(m, apps, []int{1, 1}, []float64{1, 0}); err == nil {
		t.Error("expected error for zero compute measurement")
	}
	if _, err := FitEvenAllocation(m, []roofline.App{{Name: "only", AI: 1}}, []int{1}, []float64{1}); err == nil {
		t.Error("expected error when only one app kind present")
	}
	// Target unreachable: memory app measurement too high for any bw.
	if _, err := FitEvenAllocation(m, apps, []int{1, 1}, []float64{1e15, 1}); err == nil {
		t.Error("expected unreachable error")
	}
}

func TestValidate(t *testing.T) {
	m := machine.SkylakeQuad()
	apps := []roofline.App{
		{Name: "m1", AI: 1.0 / 32}, {Name: "m2", AI: 1.0 / 32}, {Name: "m3", AI: 1.0 / 32},
		{Name: "c", AI: 1},
	}
	scenarios := []struct {
		Name     string
		Apps     []roofline.App
		Alloc    roofline.Allocation
		Measured float64
	}{
		{"uneven", apps, roofline.MustPerNodeCounts(m, []int{1, 1, 1, 17}), 22.82},
		{"even", apps, roofline.MustPerNodeCounts(m, []int{5, 5, 5, 5}), 18.14},
	}
	preds, err := Validate(m, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("got %d predictions", len(preds))
	}
	// Model values are the Table III model column.
	if math.Abs(preds[0].Model-23.20) > 0.01 || math.Abs(preds[1].Model-18.12) > 0.01 {
		t.Errorf("model values %.2f/%.2f, want 23.20/18.12", preds[0].Model, preds[1].Model)
	}
	if preds[0].RelErrPct <= 0 {
		t.Errorf("uneven model should overestimate 22.82: err = %.2f%%", preds[0].RelErrPct)
	}
}
