// Package arena implements a TBB-like runtime on the simulated OS: task
// arenas bound to NUMA nodes, a Resource Management Layer (RML) that
// dynamically moves worker threads between arenas, and master
// (non-worker) threads that submit parallel work and participate in
// executing it while they wait — the behaviour the paper discusses in
// Sections II and IV.
//
// The paper observes that binding all threads of an arena to a NUMA
// node and using RML to adjust per-arena thread counts reproduces the
// OCR-Vx runtime's thread-control option 3; this package demonstrates
// that equivalence (it implements the same agent.Client interface as
// internal/taskrt), and additionally models the non-worker threads —
// the application main thread and blocking I/O threads — that a
// TBB-style runtime does not control.
package arena

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

// job is one unit of arena work.
type job struct {
	gflop  float64
	ai     float64
	node   machine.NodeID // memory accessed; LocalNode for local
	onDone func()
}

// Arena is a collection of worker slots bound to one NUMA node, like a
// tbb::task_arena constrained to a NUMA node.
type Arena struct {
	rt          *Runtime
	node        machine.NodeID
	queue       []job
	outstanding int // submitted, not completed
	workers     []*worker
	executed    uint64
}

// Node returns the NUMA node the arena is bound to.
func (a *Arena) Node() machine.NodeID { return a.node }

// Workers returns the number of worker threads currently assigned.
func (a *Arena) Workers() int { return len(a.workers) }

// Pending returns queued (not yet started) jobs.
func (a *Arena) Pending() int { return len(a.queue) }

// Executed returns the number of completed jobs.
func (a *Arena) Executed() uint64 { return a.executed }

// Submit enqueues one job on the arena. onDone may be nil.
func (a *Arena) Submit(gflop, ai float64, onDone func()) {
	if gflop < 0 {
		panic("arena: negative job size")
	}
	a.queue = append(a.queue, job{gflop: gflop, ai: ai, node: osched.LocalNode, onDone: onDone})
	a.outstanding++
	a.wakeOne()
}

// SubmitRemote enqueues a job whose memory traffic targets an explicit
// node (for NUMA-bad workloads).
func (a *Arena) SubmitRemote(gflop, ai float64, node machine.NodeID, onDone func()) {
	if gflop < 0 {
		panic("arena: negative job size")
	}
	a.queue = append(a.queue, job{gflop: gflop, ai: ai, node: node, onDone: onDone})
	a.outstanding++
	a.wakeOne()
}

func (a *Arena) wakeOne() {
	for _, w := range a.workers {
		if w.idle {
			w.idle = false
			w.thread.Wake()
			return
		}
	}
	// Also wake a waiting master attached to this arena.
	for _, m := range a.rt.masters {
		if m.waitingOn == a {
			m.waitingOn = nil
			m.thread.Wake()
			return
		}
	}
}

func (a *Arena) pop() (job, bool) {
	if len(a.queue) == 0 {
		return job{}, false
	}
	j := a.queue[0]
	a.queue = a.queue[1:]
	return j, true
}

func (a *Arena) jobDone(j job) {
	a.executed++
	a.outstanding--
	a.rt.tasksExecuted++
	if j.onDone != nil {
		j.onDone()
	}
	// A master waiting for the arena to drain is woken when the last
	// job completes.
	if a.outstanding == 0 {
		for _, m := range a.rt.masters {
			if m.waitingOn == a {
				m.waitingOn = nil
				m.thread.Wake()
			}
		}
	}
}

// worker is an RML-managed thread, currently serving one arena (or
// parked in the RML pool when arena is nil).
type worker struct {
	rt     *Runtime
	id     int
	arena  *Arena
	target *Arena // pending reassignment, applied at job boundary
	thread *osched.Thread
	idle   bool
	pooled bool
}

// Next implements osched.Runner.
func (w *worker) Next(*osched.Thread) osched.Work {
	// Apply a pending reassignment at the job boundary.
	if w.target != w.arena {
		w.rt.applyReassign(w)
	}
	if w.arena == nil {
		w.pooled = true
		return osched.Work{Kind: osched.WorkBlock}
	}
	j, ok := w.arena.pop()
	if !ok {
		w.idle = true
		return osched.Work{Kind: osched.WorkBlock}
	}
	return osched.Work{
		Kind:    osched.WorkCompute,
		GFlop:   j.gflop,
		AI:      j.ai,
		MemNode: j.node,
		OnDone:  func() { w.arena.jobDone(j) },
	}
}

// Config configures the arena runtime.
type Config struct {
	// Name labels the runtime's OS process.
	Name string
	// Workers is the RML thread-pool size; 0 means one per core.
	Workers int
}

// Runtime is a TBB-like runtime instance: one arena per NUMA node plus
// an RML pool of workers.
type Runtime struct {
	os      *osched.OS
	proc    *osched.Process
	name    string
	arenas  []*Arena
	workers []*worker
	masters []*Master

	tasksExecuted uint64
}

// New creates the runtime with one NUMA-bound arena per node and the
// worker pool distributed evenly across arenas.
func New(os *osched.OS, cfg Config) *Runtime {
	m := os.Machine()
	if cfg.Workers <= 0 {
		cfg.Workers = m.TotalCores()
	}
	rt := &Runtime{os: os, proc: os.NewProcess(cfg.Name), name: cfg.Name}
	for n := 0; n < m.NumNodes(); n++ {
		rt.arenas = append(rt.arenas, &Arena{rt: rt, node: machine.NodeID(n)})
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{rt: rt, id: i}
		a := rt.arenas[assignNode(m, i)]
		w.arena, w.target = a, a
		aff := osched.NodeCores(m, a.node)
		w.thread = rt.proc.NewThread(fmt.Sprintf("%s-rml%d", cfg.Name, i), w, aff)
		a.workers = append(a.workers, w)
		rt.workers = append(rt.workers, w)
	}
	return rt
}

// assignNode fills nodes up to their core counts in order, wrapping.
func assignNode(m *machine.Machine, i int) int {
	total := m.TotalCores()
	i %= total
	for n, nd := range m.Nodes {
		if i < nd.Cores {
			return n
		}
		i -= nd.Cores
	}
	return 0
}

// Name implements agent.Client.
func (rt *Runtime) Name() string { return rt.name }

// Process implements agent.Client.
func (rt *Runtime) Process() *osched.Process { return rt.proc }

// Arena returns the arena bound to the given node.
func (rt *Runtime) Arena(n machine.NodeID) *Arena {
	if int(n) < 0 || int(n) >= len(rt.arenas) {
		panic(fmt.Sprintf("arena: node %d out of range", n))
	}
	return rt.arenas[n]
}

// applyReassign moves a worker to its target arena (or pool).
func (rt *Runtime) applyReassign(w *worker) {
	if w.arena != nil {
		ws := w.arena.workers
		for i, x := range ws {
			if x == w {
				w.arena.workers = append(ws[:i], ws[i+1:]...)
				break
			}
		}
	}
	w.arena = w.target
	if w.arena != nil {
		w.arena.workers = append(w.arena.workers, w)
		w.thread.SetAffinity(osched.NodeCores(rt.os.Machine(), w.arena.node))
	}
}

// SetArenaThreads is the RML operation: adjust one arena's worker count
// by pulling threads from (or releasing them to) the pool. Workers
// leave at job boundaries; joining workers wake immediately.
func (rt *Runtime) SetArenaThreads(node machine.NodeID, n int) error {
	if int(node) < 0 || int(node) >= len(rt.arenas) {
		return fmt.Errorf("arena: node %d out of range", node)
	}
	if n < 0 {
		n = 0
	}
	a := rt.arenas[node]
	// Count workers targeted at this arena (assigned or inbound).
	current := 0
	for _, w := range rt.workers {
		if w.target == a {
			current++
		}
	}
	for ; current > n; current-- {
		// Release one: prefer idle workers for immediacy.
		w := rt.pickRelease(a)
		if w == nil {
			break
		}
		w.target = nil
		if w.idle {
			w.idle = false
			w.thread.Wake() // let it park into the pool
		}
	}
	for ; current < n; current++ {
		w := rt.pickPooled()
		if w == nil {
			break
		}
		w.target = a
		w.pooled = false
		w.thread.Wake()
	}
	return nil
}

func (rt *Runtime) pickRelease(a *Arena) *worker {
	var busy *worker
	for _, w := range rt.workers {
		if w.target != a {
			continue
		}
		if w.idle {
			return w
		}
		busy = w
	}
	return busy
}

func (rt *Runtime) pickPooled() *worker {
	for _, w := range rt.workers {
		if w.target == nil {
			return w
		}
	}
	return nil
}

// SetNodeThreads implements agent.Client (thread-control option 3): the
// per-node counts map directly onto per-arena RML adjustments — the
// equivalence the paper points out for TBB.
func (rt *Runtime) SetNodeThreads(counts []int) error {
	if len(counts) != len(rt.arenas) {
		return fmt.Errorf("arena: got %d counts, machine has %d nodes", len(counts), len(rt.arenas))
	}
	// Shrink first so released workers are available for growth.
	for n, c := range counts {
		if c < rt.arenas[n].Workers() {
			if err := rt.SetArenaThreads(machine.NodeID(n), c); err != nil {
				return err
			}
		}
	}
	for n, c := range counts {
		if err := rt.SetArenaThreads(machine.NodeID(n), c); err != nil {
			return err
		}
	}
	return nil
}

// SetTotalThreads implements agent.Client (option 1): the total is
// spread across arenas as evenly as possible.
func (rt *Runtime) SetTotalThreads(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(rt.workers) {
		n = len(rt.workers)
	}
	counts := make([]int, len(rt.arenas))
	per := n / len(rt.arenas)
	extra := n % len(rt.arenas)
	for i := range counts {
		counts[i] = per
		if i < extra {
			counts[i]++
		}
	}
	_ = rt.SetNodeThreads(counts)
}

// Stats implements agent.Client using the same snapshot shape as the
// task runtime.
func (rt *Runtime) Stats() taskrt.Stats {
	s := taskrt.Stats{
		TasksExecuted: rt.tasksExecuted,
		Workers:       len(rt.workers),
		GFlopDone:     rt.proc.GFlopDone(),
		BusySeconds:   rt.proc.BusySeconds(),
	}
	for _, a := range rt.arenas {
		s.Pending += a.Pending()
		s.Outstanding += a.outstanding
	}
	for _, w := range rt.workers {
		switch {
		case w.pooled || w.target == nil:
			s.Suspended++
		case w.idle:
			s.Idle++
		default:
			s.Running++
		}
	}
	return s
}

// --- Master (non-worker) threads, Section IV ---

// StepKind selects a master-script step.
type StepKind int

const (
	// StepSerial runs compute work on the master thread itself.
	StepSerial StepKind = iota
	// StepParallel submits Tasks jobs to the Node's arena and
	// participates in executing them until all complete (like a TBB
	// parallel_for: the waiting master runs tasks too).
	StepParallel
	// StepIO blocks the master in a simulated I/O call for Duration.
	StepIO
)

// Step is one element of a master thread's script.
type Step struct {
	Kind StepKind
	// GFlop/AI size serial work or each parallel task.
	GFlop float64
	AI    float64
	// Node and Tasks configure StepParallel.
	Node  machine.NodeID
	Tasks int
	// Duration configures StepIO.
	Duration des.Time
	// OnDone fires when the step completes (may be nil).
	OnDone func()
}

// Master is an application main thread: not an RML worker, but it
// executes arena jobs while waiting for a parallel region to finish.
type Master struct {
	rt     *Runtime
	thread *osched.Thread
	steps  []Step
	pos    int
	// inParallel tracks the arena of the active parallel region.
	region    *Arena
	regionEnd func()
	waitingOn *Arena
	loops     bool
	done      bool
}

// NewMaster creates a master thread running the script once (loop =
// false) or forever (loop = true). The master is unbound (any core),
// like a typical application main thread.
func (rt *Runtime) NewMaster(name string, steps []Step, loop bool) *Master {
	if len(steps) == 0 {
		panic("arena: empty master script")
	}
	m := &Master{rt: rt, steps: steps, loops: loop}
	m.thread = rt.proc.NewThread(name, m, osched.AllCores(rt.os.Machine()))
	rt.masters = append(rt.masters, m)
	return m
}

// Done reports whether a non-looping master finished its script.
func (m *Master) Done() bool { return m.done }

// Next implements osched.Runner: the master's state machine.
func (m *Master) Next(*osched.Thread) osched.Work {
	// Inside a parallel region: help execute the arena's jobs.
	if m.region != nil {
		if j, ok := m.region.pop(); ok {
			region := m.region
			return osched.Work{
				Kind:    osched.WorkCompute,
				GFlop:   j.gflop,
				AI:      j.ai,
				MemNode: j.node,
				OnDone:  func() { region.jobDone(j) },
			}
		}
		if m.region.outstanding > 0 {
			// Nothing to steal but jobs still running: wait.
			m.waitingOn = m.region
			return osched.Work{Kind: osched.WorkBlock}
		}
		// Region complete.
		end := m.regionEnd
		m.region, m.regionEnd = nil, nil
		if end != nil {
			end()
		}
	}
	if m.pos >= len(m.steps) {
		if !m.loops {
			m.done = true
			return osched.Work{Kind: osched.WorkExit}
		}
		m.pos = 0
	}
	step := m.steps[m.pos]
	m.pos++
	switch step.Kind {
	case StepSerial:
		return osched.Work{Kind: osched.WorkCompute, GFlop: step.GFlop, AI: step.AI, OnDone: step.OnDone}
	case StepParallel:
		a := m.rt.Arena(step.Node)
		for i := 0; i < step.Tasks; i++ {
			a.Submit(step.GFlop, step.AI, nil)
		}
		m.region = a
		m.regionEnd = step.OnDone
		// Loop around: the master immediately starts helping.
		return m.Next(nil)
	case StepIO:
		return osched.Work{Kind: osched.WorkSleep, Duration: step.Duration, OnDone: step.OnDone}
	default:
		panic(fmt.Sprintf("arena: unknown step kind %d", step.Kind))
	}
}

// NewIOThread creates a non-worker thread that repeatedly performs
// blockingIO for ioTime then a small amount of processing — the paper's
// "extra threads created by the application to do the I/O".
func (rt *Runtime) NewIOThread(name string, ioTime des.Time, processGFlop float64) *osched.Thread {
	io := true
	return rt.proc.NewThread(name, osched.RunnerFunc(func(*osched.Thread) osched.Work {
		if io {
			io = false
			return osched.Work{Kind: osched.WorkSleep, Duration: ioTime}
		}
		io = true
		return osched.Work{Kind: osched.WorkCompute, GFlop: processGFlop, AI: 0}
	}), osched.AllCores(rt.os.Machine()))
}
