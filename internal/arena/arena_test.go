package arena

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
)

func newSim(m *machine.Machine) (*des.Engine, *osched.OS) {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	return eng, o
}

func TestArenaExecutesJobs(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	done := 0
	for i := 0; i < 16; i++ {
		rt.Arena(0).Submit(0.05, 0, func() { done++ })
	}
	eng.RunUntil(1)
	if done != 16 {
		t.Errorf("done = %d, want 16", done)
	}
	if rt.Arena(0).Executed() != 16 || rt.Arena(0).Pending() != 0 {
		t.Errorf("arena counters wrong: exec=%d pend=%d", rt.Arena(0).Executed(), rt.Arena(0).Pending())
	}
	if rt.Stats().TasksExecuted != 16 {
		t.Errorf("stats executed = %d", rt.Stats().TasksExecuted)
	}
}

func TestArenaWorkersStayOnNode(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	// Default: 8 workers per arena. Arena 2's jobs must run on node 2.
	for i := 0; i < 64; i++ {
		rt.Arena(2).Submit(0.02, 0.5, nil)
	}
	eng.RunUntil(1)
	loads := o.CoreLoads()
	for c := 0; c < 32; c++ {
		node := m.NodeOfCore(machine.CoreID(c))
		if node == 2 && loads[c] == 0 {
			t.Errorf("node-2 core %d never used", c)
		}
		if node != 2 && loads[c] > 0.01 {
			t.Errorf("core %d (node %d) used %.3fs for node-2 arena work", c, node, loads[c])
		}
	}
}

func TestRMLMovesThreads(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	if got := rt.Arena(0).Workers(); got != 8 {
		t.Fatalf("initial arena-0 workers = %d, want 8", got)
	}
	// Shrink arena 0 to 2, grow arena 1 to 14.
	if err := rt.SetArenaThreads(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetArenaThreads(1, 14); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(0.1)
	if got := rt.Arena(0).Workers(); got != 2 {
		t.Errorf("arena-0 workers = %d, want 2", got)
	}
	if got := rt.Arena(1).Workers(); got != 14 {
		t.Errorf("arena-1 workers = %d, want 14", got)
	}
	// Moved workers must now carry node-1 affinity.
	for _, w := range rt.arenas[1].workers {
		aff := w.thread.Affinity()
		for _, c := range aff.Cores() {
			if m.NodeOfCore(c) != 1 {
				t.Errorf("arena-1 worker allows core %d on node %d", c, m.NodeOfCore(c))
			}
		}
	}
	if err := rt.SetArenaThreads(99, 1); err == nil {
		t.Error("expected error for bad node")
	}
}

func TestSetNodeThreadsOption3Equivalence(t *testing.T) {
	// The paper: binding arena threads to NUMA nodes + RML adjustments
	// == OCR-Vx option 3. Throughput must track the per-node counts.
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	// Continuous feed into every arena.
	var feed func(n machine.NodeID)
	feed = func(n machine.NodeID) {
		rt.Arena(n).Submit(0.01, 0, func() { feed(n) })
	}
	for n := 0; n < 4; n++ {
		for i := 0; i < 16; i++ {
			feed(machine.NodeID(n))
		}
	}
	if err := rt.SetNodeThreads([]int{4, 2, 0, 0}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1)
	st := rt.Stats()
	// ~6 active cores * 10 GFLOPS; allow dispatch losses.
	if st.GFlopDone < 52 || st.GFlopDone > 62 {
		t.Errorf("GFlopDone = %.2f, want ~60", st.GFlopDone)
	}
	if err := rt.SetNodeThreads([]int{1, 1}); err == nil {
		t.Error("expected error for wrong counts length")
	}
}

func TestSetTotalThreadsSpreads(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	rt.SetTotalThreads(8)
	eng.RunUntil(0.1)
	total := 0
	for n := 0; n < 4; n++ {
		w := rt.Arena(machine.NodeID(n)).Workers()
		if w != 2 {
			t.Errorf("arena %d workers = %d, want 2", n, w)
		}
		total += w
	}
	if total != 8 {
		t.Errorf("total = %d, want 8", total)
	}
	st := rt.Stats()
	if st.Suspended != 24 {
		t.Errorf("suspended = %d, want 24", st.Suspended)
	}
}

func TestMasterParticipates(t *testing.T) {
	// A parallel region on an arena with zero workers must still finish
	// because the master executes the jobs itself (TBB semantics).
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb", Workers: 4})
	for n := 0; n < 4; n++ {
		if err := rt.SetArenaThreads(machine.NodeID(n), 0); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(0.01)
	var regionDone bool
	master := rt.NewMaster("main", []Step{
		{Kind: StepSerial, GFlop: 0.05},
		{Kind: StepParallel, Node: 1, Tasks: 8, GFlop: 0.02, OnDone: func() { regionDone = true }},
		{Kind: StepSerial, GFlop: 0.05},
	}, false)
	eng.RunUntil(2)
	if !regionDone {
		t.Error("parallel region never completed")
	}
	if !master.Done() {
		t.Error("master script not finished")
	}
	if got := rt.Arena(1).Executed(); got != 8 {
		t.Errorf("arena executed = %d, want 8", got)
	}
}

func TestMasterAndWorkersShareRegion(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	var doneAt des.Time
	rt.NewMaster("main", []Step{
		{Kind: StepParallel, Node: 0, Tasks: 64, GFlop: 0.05, OnDone: func() { doneAt = eng.Now() }},
	}, false)
	eng.RunUntil(2)
	if doneAt == 0 {
		t.Fatal("region never finished")
	}
	// 64 x 0.05 GFlop = 3.2 GFlop; 8 node-0 workers + master ~ 9 cores
	// at 10 GFLOPS -> ~36-45 ms.
	if doneAt > 0.07 {
		t.Errorf("region took %v, want < 0.07 s (workers + master)", doneAt)
	}
}

func TestMasterLoop(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb", Workers: 4})
	iters := 0
	rt.NewMaster("main", []Step{
		{Kind: StepSerial, GFlop: 0.01, OnDone: func() { iters++ }},
		{Kind: StepIO, Duration: 5 * des.Millisecond},
	}, true)
	eng.RunUntil(0.5)
	if iters < 10 {
		t.Errorf("looping master iterations = %d, want many", iters)
	}
}

func TestIOThread(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb", Workers: 1})
	th := rt.NewIOThread("io", 10*des.Millisecond, 0.001)
	eng.RunUntil(1)
	// The I/O thread spends most time blocked: tiny busy fraction.
	if busy := th.BusySeconds(); busy > 0.1 {
		t.Errorf("I/O thread busy %.3f s, want mostly blocked", busy)
	}
	if th.GFlopDone() == 0 {
		t.Error("I/O thread never processed data")
	}
}

func TestMasterValidation(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty script")
		}
	}()
	rt.NewMaster("main", nil, false)
}

func TestSubmitValidation(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative job")
		}
	}()
	rt.Arena(0).Submit(-1, 0, nil)
}

func TestSubmitRemote(t *testing.T) {
	// Jobs in arena 1 accessing node 0 memory are limited by the link.
	m := machine.Uniform("m", 2, 4, 10, 40, 5)
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	var feed func()
	feed = func() { rt.Arena(1).SubmitRemote(0.01, 1, 0, feed) }
	for i := 0; i < 8; i++ {
		feed()
	}
	eng.RunUntil(1)
	// 4 workers on node 1 demanding 10 GB/s each over a 5 GB/s link:
	// 5 GB/s * AI 1 = 5 GFLOPS total.
	got := rt.Stats().GFlopDone
	if math.Abs(got-5) > 0.5 {
		t.Errorf("remote GFlop = %.2f, want ~5", got)
	}
}

func TestStatsShape(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	st := rt.Stats()
	if st.Workers != 32 {
		t.Errorf("workers = %d, want 32", st.Workers)
	}
	rt.Arena(0).Submit(1, 0, nil)
	eng.RunUntil(0.01)
	st = rt.Stats()
	if st.Running != 1 {
		t.Errorf("running = %d, want 1", st.Running)
	}
	if rt.Name() != "tbb" || rt.Process() == nil {
		t.Error("accessors wrong")
	}
}

func TestArenaPanicsOnBadNode(t *testing.T) {
	m := machine.PaperModel()
	_, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rt.Arena(99)
}

func TestRMLChurnUnderLoad(t *testing.T) {
	// Rapidly shuffling threads between arenas while jobs flow must
	// neither lose jobs nor leave workers stranded.
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	var feed func(n machine.NodeID)
	feed = func(n machine.NodeID) {
		rt.Arena(n).Submit(0.01, 0.5, func() { feed(n) })
	}
	for n := 0; n < 4; n++ {
		for i := 0; i < 8; i++ {
			feed(machine.NodeID(n))
		}
	}
	// Shuffle every 20 ms between two lopsided layouts.
	flip := false
	eng.Ticker(20*des.Millisecond, func(des.Time) {
		flip = !flip
		if flip {
			_ = rt.SetNodeThreads([]int{16, 8, 4, 4})
		} else {
			_ = rt.SetNodeThreads([]int{4, 4, 8, 16})
		}
	})
	eng.RunUntil(1)
	st := rt.Stats()
	if st.TasksExecuted < 1000 {
		t.Errorf("executed only %d jobs under churn", st.TasksExecuted)
	}
	// No worker may be lost: accounted states must sum to the pool.
	if st.Suspended+st.Idle+st.Running > st.Workers {
		t.Errorf("worker states overflow: %+v", st)
	}
	// Allocation converges to whichever layout was last applied.
	eng.RunUntil(1.25)
	total := 0
	for n := 0; n < 4; n++ {
		total += rt.Arena(machine.NodeID(n)).Workers()
	}
	if total != 32 {
		t.Errorf("workers across arenas = %d, want 32", total)
	}
}

func TestMasterSurvivesArenaShuffle(t *testing.T) {
	m := machine.PaperModel()
	eng, o := newSim(m)
	rt := New(o, Config{Name: "tbb"})
	regions := 0
	rt.NewMaster("main", []Step{
		{Kind: StepParallel, Node: 1, Tasks: 16, GFlop: 0.02, OnDone: func() { regions++ }},
		{Kind: StepSerial, GFlop: 0.01},
	}, true)
	eng.Ticker(15*des.Millisecond, func(des.Time) {
		_ = rt.SetArenaThreads(1, 1+regions%8)
	})
	eng.RunUntil(2)
	if regions < 10 {
		t.Errorf("regions completed = %d, want many despite RML churn", regions)
	}
}
