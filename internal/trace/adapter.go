package trace

import "repro/internal/machine"

// RuntimeTracer adapts a Trace to the task runtime's Tracer interface
// (taskrt.Tracer is satisfied structurally — no import needed).
type RuntimeTracer struct {
	T *Trace
}

// TaskStart implements taskrt.Tracer.
func (rt RuntimeTracer) TaskStart(runtime, task string, workerID int, _ machine.CoreID, at float64) {
	rt.T.Begin(task, runtime, workerID, at)
}

// TaskEnd implements taskrt.Tracer.
func (rt RuntimeTracer) TaskEnd(runtime, _ string, workerID int, at float64) {
	rt.T.End(runtime, workerID, at)
}
