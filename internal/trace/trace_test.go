package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

func TestSpanRecording(t *testing.T) {
	tr := New()
	tr.Begin("a", "app", 0, 1.0)
	tr.End("app", 0, 2.0)
	tr.Begin("b", "app", 0, 2.5)
	tr.End("app", 0, 3.0)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "a" || spans[0].Start != 1 || spans[0].End != 2 {
		t.Errorf("span 0 = %+v", spans[0])
	}
}

func TestOpenSpanExcluded(t *testing.T) {
	tr := New()
	tr.Begin("open", "app", 0, 1.0)
	if len(tr.Spans()) != 0 {
		t.Error("open span must not appear")
	}
	tr.End("app", 0, 2.0)
	if len(tr.Spans()) != 1 {
		t.Error("closed span missing")
	}
	tr.End("app", 0, 3.0) // unmatched end ignored
	if len(tr.Spans()) != 1 {
		t.Error("unmatched end created a span")
	}
}

func TestBeginClosesPreviousOnLane(t *testing.T) {
	tr := New()
	tr.Begin("a", "app", 0, 1.0)
	tr.Begin("b", "app", 0, 2.0) // closes "a" at 2.0
	tr.End("app", 0, 3.0)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].End != 2.0 {
		t.Errorf("lane auto-close wrong: %+v", spans)
	}
}

func TestLanesIndependent(t *testing.T) {
	tr := New()
	tr.Begin("a", "app", 0, 1.0)
	tr.Begin("b", "app", 1, 1.0)
	tr.Begin("c", "other", 0, 1.0)
	tr.End("app", 0, 2.0)
	tr.End("app", 1, 3.0)
	tr.End("other", 0, 4.0)
	if len(tr.Spans()) != 3 {
		t.Errorf("spans = %d, want 3", len(tr.Spans()))
	}
}

func TestChromeJSON(t *testing.T) {
	tr := New()
	tr.Begin("task", "app", 2, 0.001)
	tr.End("app", 2, 0.003)
	tr.Mark("command", "agent", 0.002)
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["ts"].(float64) != 1000 || events[0]["dur"].(float64) != 2000 {
		t.Errorf("span event wrong: %v", events[0])
	}
	if events[1]["ph"] != "i" {
		t.Errorf("instant event wrong: %v", events[1])
	}
}

func TestSummary(t *testing.T) {
	tr := New()
	tr.Begin("a", "app", 0, 0)
	tr.End("app", 0, 1)
	tr.Begin("b", "app", 0, 1)
	tr.End("app", 0, 2)
	out := tr.Summary()
	if !strings.Contains(out, "app") || !strings.Contains(out, "2") {
		t.Errorf("summary missing data:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Errorf("utilization missing:\n%s", out)
	}
}

func TestInstants(t *testing.T) {
	tr := New()
	tr.Mark("x", "p", 1)
	if len(tr.Instants()) != 1 {
		t.Error("instant lost")
	}
}

// TestIntegrationWithRuntime traces a real simulated run.
func TestIntegrationWithRuntime(t *testing.T) {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{
		Machine:           m,
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})
	o.Start()
	rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindCore, Workers: 4})
	tr := New()
	rt.SetTracer(RuntimeTracer{T: tr})
	done := 0
	for i := 0; i < 20; i++ {
		task := rt.NewTask("kernel", 0.02, 0, nil)
		task.OnComplete = func() { done++ }
		rt.Submit(task)
	}
	eng.RunUntil(1)
	if done != 20 {
		t.Fatalf("done = %d", done)
	}
	spans := tr.Spans()
	if len(spans) != 20 {
		t.Fatalf("traced %d spans, want 20", len(spans))
	}
	for _, s := range spans {
		if s.End <= s.Start {
			t.Errorf("span %q has non-positive duration [%f,%f]", s.Name, s.Start, s.End)
		}
		if s.PID != "app" || s.TID < 0 || s.TID > 3 {
			t.Errorf("span lane wrong: %+v", s)
		}
	}
	if _, err := tr.ChromeJSON(); err != nil {
		t.Error(err)
	}
	// The tracer interface is satisfied structurally.
	var _ taskrt.Tracer = RuntimeTracer{}
}
