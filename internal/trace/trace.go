// Package trace records task-level execution timelines from simulated
// runs and exports them as Chrome trace-event JSON (load chrome://
// tracing or https://ui.perfetto.dev) or as a text summary. It is the
// observability layer a runtime developer uses to inspect scheduling
// decisions — which worker ran which task when, and where the agent's
// thread-control commands landed.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Span is one task execution on one worker.
type Span struct {
	// Name is the task label.
	Name string `json:"name"`
	// PID groups spans by runtime/application.
	PID string `json:"pid"`
	// TID is the worker lane within the runtime.
	TID int `json:"tid"`
	// Start and End are simulated seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Instant is a point event (e.g. an agent command).
type Instant struct {
	Name string  `json:"name"`
	PID  string  `json:"pid"`
	T    float64 `json:"t"`
}

// Trace accumulates spans and instants.
type Trace struct {
	spans    []Span
	instants []Instant
	open     map[spanKey]int // index of open span
}

type spanKey struct {
	pid string
	tid int
}

// New creates an empty trace.
func New() *Trace {
	return &Trace{open: map[spanKey]int{}}
}

// Begin opens a span; a still-open span on the same (pid, tid) lane is
// closed at the new span's start time (lanes are sequential).
func (tr *Trace) Begin(name, pid string, tid int, at float64) {
	k := spanKey{pid, tid}
	if idx, ok := tr.open[k]; ok {
		tr.spans[idx].End = at
	}
	tr.spans = append(tr.spans, Span{Name: name, PID: pid, TID: tid, Start: at, End: -1})
	tr.open[k] = len(tr.spans) - 1
}

// End closes the open span on the lane. Unmatched Ends are ignored.
func (tr *Trace) End(pid string, tid int, at float64) {
	k := spanKey{pid, tid}
	if idx, ok := tr.open[k]; ok {
		tr.spans[idx].End = at
		delete(tr.open, k)
	}
}

// Mark records an instant event.
func (tr *Trace) Mark(name, pid string, at float64) {
	tr.instants = append(tr.instants, Instant{Name: name, PID: pid, T: at})
}

// Spans returns completed spans (open spans are excluded).
func (tr *Trace) Spans() []Span {
	out := make([]Span, 0, len(tr.spans))
	for _, s := range tr.spans {
		if s.End >= 0 {
			out = append(out, s)
		}
	}
	return out
}

// Instants returns the recorded point events.
func (tr *Trace) Instants() []Instant {
	return append([]Instant(nil), tr.instants...)
}

// chromeEvent is the Chrome trace-event JSON schema (subset).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds
	Dur  float64 `json:"dur,omitempty"`
	PID  string  `json:"pid"`
	TID  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
}

// ChromeJSON renders the trace in Chrome trace-event format
// ("X" complete events for spans, "i" instants), timestamps in
// microseconds of simulated time.
func (tr *Trace) ChromeJSON() ([]byte, error) {
	var events []chromeEvent
	for _, s := range tr.Spans() {
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
			PID: s.PID, TID: s.TID,
		})
	}
	for _, in := range tr.instants {
		events = append(events, chromeEvent{
			Name: in.Name, Ph: "i", Ts: in.T * 1e6, PID: in.PID, S: "g",
		})
	}
	return json.Marshal(events)
}

// LaneStats summarizes one worker lane.
type LaneStats struct {
	PID       string
	TID       int
	Spans     int
	BusyTime  float64
	FirstSeen float64
	LastSeen  float64
}

// Summary aggregates busy time per lane and renders a text report.
func (tr *Trace) Summary() string {
	lanes := map[spanKey]*LaneStats{}
	for _, s := range tr.Spans() {
		k := spanKey{s.PID, s.TID}
		l := lanes[k]
		if l == nil {
			l = &LaneStats{PID: s.PID, TID: s.TID, FirstSeen: s.Start, LastSeen: s.End}
			lanes[k] = l
		}
		l.Spans++
		l.BusyTime += s.End - s.Start
		if s.Start < l.FirstSeen {
			l.FirstSeen = s.Start
		}
		if s.End > l.LastSeen {
			l.LastSeen = s.End
		}
	}
	keys := make([]spanKey, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %8s %12s %12s\n", "runtime", "worker", "tasks", "busy (s)", "util")
	for _, k := range keys {
		l := lanes[k]
		window := l.LastSeen - l.FirstSeen
		util := 0.0
		if window > 0 {
			util = l.BusyTime / window
		}
		fmt.Fprintf(&b, "%-16s %6d %8d %12.4f %11.1f%%\n", l.PID, l.TID, l.Spans, l.BusyTime, util*100)
	}
	fmt.Fprintf(&b, "total spans: %d, instants: %d\n", len(tr.Spans()), len(tr.instants))
	return b.String()
}
