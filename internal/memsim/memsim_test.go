package memsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/roofline"
)

func TestLocalSplitBaseline(t *testing.T) {
	// Table I, node view: 3 memory-bound threads (20 GB/s each) + 5
	// compute-bound threads (1 GB/s each) on one 8-core 32 GB/s node.
	m := machine.PaperModel()
	a := NewArbiter(m, 1)
	var reqs []Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, Request{Core: machine.CoreID(i), Node: 0, Demand: 20})
	}
	for i := 3; i < 8; i++ {
		reqs = append(reqs, Request{Core: machine.CoreID(i), Node: 0, Demand: 1})
	}
	g := a.Arbitrate(reqs, 0.001)
	for i := 0; i < 3; i++ {
		if math.Abs(g[i].BW-9) > 1e-9 {
			t.Errorf("mem thread %d got %.4f GB/s, want 9", i, g[i].BW)
		}
	}
	for i := 3; i < 8; i++ {
		if math.Abs(g[i].BW-1) > 1e-9 {
			t.Errorf("comp thread %d got %.4f GB/s, want 1", i, g[i].BW)
		}
	}
}

func TestZeroAndEmpty(t *testing.T) {
	m := machine.PaperModel()
	a := NewArbiter(m, 1)
	if g := a.Arbitrate(nil, 0.001); len(g) != 0 {
		t.Error("empty request list should yield empty grants")
	}
	g := a.Arbitrate([]Request{{Core: 0, Node: 0, Demand: 0}}, 0.001)
	if g[0].BW != 0 {
		t.Error("zero demand should get zero grant")
	}
}

func TestRemotePriority(t *testing.T) {
	// One remote accessor (via a 10 GB/s link) and local threads that
	// would consume everything: remote must still get its link share.
	m := machine.Uniform("m", 2, 4, 10, 40, 10)
	a := NewArbiter(m, 1)
	reqs := []Request{
		{Core: 4, Node: 0, Demand: 25}, // core on node 1 accessing node 0
		{Core: 0, Node: 0, Demand: 100},
		{Core: 1, Node: 0, Demand: 100},
	}
	g := a.Arbitrate(reqs, 0.001)
	if math.Abs(g[0].BW-10) > 1e-9 {
		t.Errorf("remote got %.3f GB/s, want link cap 10", g[0].BW)
	}
	if !g[0].Remote {
		t.Error("remote grant not flagged")
	}
	// Locals split the remaining 30: baseline 7.5 each, then remainder
	// 15 split between the two unsatisfied -> 15 each.
	for i := 1; i <= 2; i++ {
		if math.Abs(g[i].BW-15) > 1e-9 {
			t.Errorf("local %d got %.3f GB/s, want 15", i, g[i].BW)
		}
		if g[i].Remote {
			t.Error("local grant flagged remote")
		}
	}
}

func TestLinkSharedProportionally(t *testing.T) {
	m := machine.Uniform("m", 2, 4, 10, 40, 12)
	a := NewArbiter(m, 1)
	// Two remote accessors share one 12 GB/s link, demands 18 and 6
	// (total 24 > 12): split 9 / 3.
	reqs := []Request{
		{Core: 4, Node: 0, Demand: 18},
		{Core: 5, Node: 0, Demand: 6},
	}
	g := a.Arbitrate(reqs, 0.001)
	if math.Abs(g[0].BW-9) > 1e-9 || math.Abs(g[1].BW-3) > 1e-9 {
		t.Errorf("link split = %.3f/%.3f, want 9/3", g[0].BW, g[1].BW)
	}
}

func TestRemoteCappedByController(t *testing.T) {
	// Remote demand via many links can exceed the controller bandwidth;
	// total served must not.
	m := machine.Uniform("m", 5, 4, 10, 30, 20)
	a := NewArbiter(m, 1)
	var reqs []Request
	for n := 1; n < 5; n++ {
		c := m.FirstCoreOfNode(machine.NodeID(n))
		reqs = append(reqs, Request{Core: c, Node: 0, Demand: 20})
	}
	g := a.Arbitrate(reqs, 0.001)
	total := 0.0
	for _, gr := range g {
		total += gr.BW
	}
	if total > 30+1e-9 {
		t.Errorf("remote served %.3f > controller bandwidth 30", total)
	}
	// Equal demands -> equal shares.
	for _, gr := range g {
		if math.Abs(gr.BW-7.5) > 1e-9 {
			t.Errorf("grant %.3f, want 7.5", gr.BW)
		}
	}
}

func TestRemoteEfficiency(t *testing.T) {
	m := machine.Uniform("m", 2, 4, 10, 40, 10)
	full := NewArbiter(m, 1)
	eff := NewArbiter(m, 0.8)
	reqs := []Request{{Core: 4, Node: 0, Demand: 25}}
	gf := full.Arbitrate(reqs, 0.001)
	ge := eff.Arbitrate(reqs, 0.001)
	if math.Abs(gf[0].BW-10) > 1e-9 {
		t.Errorf("full efficiency grant %.3f, want 10", gf[0].BW)
	}
	if math.Abs(ge[0].BW-8) > 1e-9 {
		t.Errorf("0.8 efficiency grant %.3f, want 8", ge[0].BW)
	}
	// Out-of-range efficiency defaults to 1.
	if NewArbiter(m, 0).RemoteEfficiency != 1 || NewArbiter(m, 2).RemoteEfficiency != 1 {
		t.Error("bad efficiency should default to 1")
	}
}

func TestStats(t *testing.T) {
	m := machine.Uniform("m", 2, 4, 10, 40, 10)
	a := NewArbiter(m, 1)
	reqs := []Request{
		{Core: 0, Node: 0, Demand: 8},
		{Core: 4, Node: 0, Demand: 5},
	}
	a.Arbitrate(reqs, 0.5)
	st := a.Stats()
	if math.Abs(st[0].LocalGB-4) > 1e-9 { // 8 GB/s * 0.5 s
		t.Errorf("LocalGB = %.3f, want 4", st[0].LocalGB)
	}
	if math.Abs(st[0].RemoteGB-2.5) > 1e-9 {
		t.Errorf("RemoteGB = %.3f, want 2.5", st[0].RemoteGB)
	}
	if st[0].BusySeconds != 0.5 {
		t.Errorf("BusySeconds = %v, want 0.5", st[0].BusySeconds)
	}
	if st[1].LocalGB != 0 {
		t.Error("node 1 should be idle")
	}
	a.ResetStats()
	if s := a.Stats(); s[0].LocalGB != 0 || s[0].BusySeconds != 0 {
		t.Error("ResetStats did not zero")
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	m := machine.PaperModel()
	a := NewArbiter(m, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range node")
		}
	}()
	a.Arbitrate([]Request{{Core: 0, Node: 99, Demand: 1}}, 0.001)
}

// TestMatchesRooflineModel cross-validates the quantum arbiter against
// the analytic model: for a static allocation the per-thread grants must
// be identical (remote efficiency 1).
func TestMatchesRooflineModel(t *testing.T) {
	cases := []struct {
		name   string
		m      *machine.Machine
		apps   []roofline.App
		counts []int
	}{
		{
			name: "tableI",
			m:    machine.PaperModel(),
			apps: []roofline.App{
				{Name: "m1", AI: 0.5}, {Name: "m2", AI: 0.5}, {Name: "m3", AI: 0.5}, {Name: "c", AI: 10},
			},
			counts: []int{1, 1, 1, 5},
		},
		{
			name: "tableIII-S4",
			m:    machine.SkylakeQuad(),
			apps: []roofline.App{
				{Name: "m1", AI: 1.0 / 32}, {Name: "m2", AI: 1.0 / 32}, {Name: "m3", AI: 1.0 / 32},
				{Name: "bad", AI: 1.0 / 16, Placement: roofline.NUMABad, HomeNode: 0},
			},
			counts: []int{5, 5, 5, 5},
		},
		{
			name: "fig3-even",
			m:    machine.PaperModelNUMABad(),
			apps: []roofline.App{
				{Name: "m1", AI: 0.5}, {Name: "m2", AI: 0.5}, {Name: "m3", AI: 0.5},
				{Name: "bad", AI: 1, Placement: roofline.NUMABad, HomeNode: 0},
			},
			counts: []int{2, 2, 2, 2},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			al := roofline.MustPerNodeCounts(c.m, c.counts)
			model := roofline.MustEvaluate(c.m, c.apps, al)

			arb := NewArbiter(c.m, 1)
			type ref struct{ app, node int }
			var reqs []Request
			var refs []ref
			for j := 0; j < c.m.NumNodes(); j++ {
				cores := c.m.CoresOfNode(machine.NodeID(j))
				next := 0
				for i, app := range c.apps {
					target := machine.NodeID(j)
					if app.Placement == roofline.NUMABad {
						target = app.HomeNode
					}
					demand := c.m.Nodes[j].PeakGFLOPS / app.AI
					for k := 0; k < al.Threads[i][j]; k++ {
						reqs = append(reqs, Request{Core: cores[next], Node: target, Demand: demand})
						refs = append(refs, ref{i, j})
						next++
					}
				}
			}
			grants := arb.Arbitrate(reqs, 0.001)
			for idx, g := range grants {
				want := model.PerApp[refs[idx].app][refs[idx].node].BWPerThread
				if math.Abs(g.BW-want) > 1e-6 {
					t.Errorf("req %d (app %d node %d): grant %.6f, model %.6f",
						idx, refs[idx].app, refs[idx].node, g.BW, want)
				}
			}
		})
	}
}

// Property: grants never exceed demands, totals never exceed controller
// bandwidth, and all grants are non-negative.
func TestArbitrationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(4)
		cores := 1 + rng.Intn(6)
		m := machine.Uniform("p", nodes, cores, 1, 1+rng.Float64()*100, 1+rng.Float64()*20)
		a := NewArbiter(m, 0.5+rng.Float64()*0.5)
		n := rng.Intn(20)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{
				Core:   machine.CoreID(rng.Intn(m.TotalCores())),
				Node:   machine.NodeID(rng.Intn(nodes)),
				Demand: rng.Float64() * 50,
			}
		}
		g := a.Arbitrate(reqs, 0.001)
		perNode := make([]float64, nodes)
		for i, gr := range g {
			if gr.BW < 0 || gr.BW > reqs[i].Demand+1e-9 {
				return false
			}
			perNode[reqs[i].Node] += gr.BW
		}
		for j, total := range perNode {
			if total > m.Nodes[j].MemBandwidth+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContentionEfficiency(t *testing.T) {
	m := machine.PaperModel() // 32 GB/s nodes
	a := NewArbiter(m, 1)
	a.ContentionEfficiency = 0.9

	// Under-demand: full bandwidth behaviour, factor inactive.
	g := a.Arbitrate([]Request{{Core: 0, Node: 0, Demand: 20}}, 0.001)
	if math.Abs(g[0].BW-20) > 1e-9 {
		t.Errorf("under-demand grant %.3f, want 20", g[0].BW)
	}

	// Over-demand: effective bandwidth 32*0.9 = 28.8, split over 8.
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, Request{Core: machine.CoreID(i), Node: 0, Demand: 20})
	}
	g = a.Arbitrate(reqs, 0.001)
	total := 0.0
	for _, gr := range g {
		total += gr.BW
	}
	if math.Abs(total-28.8) > 1e-9 {
		t.Errorf("contended total %.3f, want 28.8", total)
	}
}
