// Package memsim arbitrates memory bandwidth among concurrently running
// threads of a simulated NUMA machine, one scheduling quantum at a time.
//
// It applies the same sharing rules as the analytic model in
// internal/roofline — remote requests served first (capped per link),
// then a per-core baseline guarantee, then a proportional split of the
// remainder — but over the *actual* set of requests in a quantum, so the
// simulated machine reacts to threads blocking, migrating and finishing
// mid-run. An optional remote-efficiency factor models the throughput
// loss of remote accesses that the analytic model ignores (latency,
// directory traffic); it is one source of the simulator's deviation from
// the model, mirroring the paper's model-vs-hardware gap.
package memsim

import (
	"fmt"

	"repro/internal/machine"
)

// Request is one running thread's memory demand for the current quantum.
type Request struct {
	// Core the thread is running on; its node defines which link a
	// remote access uses.
	Core machine.CoreID
	// Node whose memory is accessed.
	Node machine.NodeID
	// Demand in GB/s the thread would consume unconstrained.
	Demand float64
}

// Grant is the arbitration outcome for one request.
type Grant struct {
	// BW is the granted bandwidth in GB/s.
	BW float64
	// Remote reports whether the access crossed nodes.
	Remote bool
}

// NodeStats accumulates utilization per memory node.
type NodeStats struct {
	// LocalGB and RemoteGB are data volumes served, in GB.
	LocalGB  float64
	RemoteGB float64
	// BusySeconds is simulated time with nonzero traffic.
	BusySeconds float64
}

// Arbiter performs quantum arbitration and keeps per-node statistics.
type Arbiter struct {
	m *machine.Machine
	// RemoteEfficiency scales the bandwidth remote accessors can
	// actually realize over a link (0 < e <= 1). 1 reproduces the
	// analytic model exactly.
	RemoteEfficiency float64
	// ContentionEfficiency scales a node's effective bandwidth when
	// demand exceeds capacity (0 < e <= 1): real DRAM loses efficiency
	// under heavy bank/row contention, an effect the analytic model
	// ignores. 1 reproduces the model exactly.
	ContentionEfficiency float64
	stats                []NodeStats

	// scratch buffers reused across quanta to avoid allocation
	perLink []float64
	order   []int
}

// NewArbiter returns an arbiter for the machine with the given remote
// efficiency (values <= 0 or > 1 default to 1) and full contention
// efficiency; adjust ContentionEfficiency directly if needed.
func NewArbiter(m *machine.Machine, remoteEfficiency float64) *Arbiter {
	if remoteEfficiency <= 0 || remoteEfficiency > 1 {
		remoteEfficiency = 1
	}
	return &Arbiter{
		m:                    m,
		RemoteEfficiency:     remoteEfficiency,
		ContentionEfficiency: 1,
		stats:                make([]NodeStats, m.NumNodes()),
		perLink:              make([]float64, m.NumNodes()),
	}
}

// Machine returns the arbitrated machine.
func (a *Arbiter) Machine() *machine.Machine { return a.m }

// Stats returns a copy of the per-node statistics.
func (a *Arbiter) Stats() []NodeStats {
	return append([]NodeStats(nil), a.stats...)
}

// Arbitrate splits bandwidth among the requests for a quantum of the
// given length (seconds) and returns one grant per request. dt is only
// used for statistics; grants are rates. Requests with non-positive
// demand receive zero. It panics on out-of-range cores or nodes.
func (a *Arbiter) Arbitrate(reqs []Request, dt float64) []Grant {
	grants := make([]Grant, len(reqs))
	nNodes := a.m.NumNodes()

	// Group request indices by target memory node.
	byNode := make([][]int, nNodes)
	for i, r := range reqs {
		if int(r.Node) < 0 || int(r.Node) >= nNodes {
			panic(fmt.Sprintf("memsim: request %d targets node %d, out of range", i, r.Node))
		}
		if r.Demand <= 0 {
			continue
		}
		byNode[r.Node] = append(byNode[r.Node], i)
	}

	for h := 0; h < nNodes; h++ {
		idxs := byNode[h]
		if len(idxs) == 0 {
			continue
		}
		bw := a.m.Nodes[h].MemBandwidth
		// Under over-demand, the controller's effective bandwidth drops
		// by the contention-efficiency factor.
		if a.ContentionEfficiency > 0 && a.ContentionEfficiency < 1 {
			demand := 0.0
			for _, i := range idxs {
				demand += reqs[i].Demand
			}
			if demand > bw {
				bw *= a.ContentionEfficiency
			}
		}

		// Remote first: per requesting node, cap by the link and the
		// remote-efficiency factor, splitting a saturated link
		// proportionally to demand.
		for j := range a.perLink {
			a.perLink[j] = 0
		}
		var remoteIdx, localIdx []int
		for _, i := range idxs {
			src := a.m.NodeOfCore(reqs[i].Core)
			if src != machine.NodeID(h) {
				a.perLink[src] += reqs[i].Demand
				remoteIdx = append(remoteIdx, i)
			} else {
				localIdx = append(localIdx, i)
			}
		}
		remoteServed := 0.0
		for _, i := range remoteIdx {
			src := a.m.NodeOfCore(reqs[i].Core)
			link := a.m.Link(src, machine.NodeID(h)) * a.RemoteEfficiency
			g := reqs[i].Demand
			if a.perLink[src] > link {
				g = reqs[i].Demand * link / a.perLink[src]
			}
			grants[i] = Grant{BW: g, Remote: true}
			remoteServed += g
		}
		if remoteServed > bw {
			scale := bw / remoteServed
			for _, i := range remoteIdx {
				grants[i].BW *= scale
			}
			remoteServed = bw
		}

		// Local: baseline guarantee per core, then proportional
		// remainder (single proportional round; see roofline).
		avail := bw - remoteServed
		baseline := avail / float64(a.m.Nodes[h].Cores)
		allocated := 0.0
		for _, i := range localIdx {
			g := min(reqs[i].Demand, baseline)
			grants[i] = Grant{BW: g}
			allocated += g
		}
		// More local requests than cores (transient over-subscription)
		// can push the baseline grants past the available bandwidth;
		// scale down so the controller is never over-committed.
		if allocated > avail && allocated > 0 {
			scale := avail / allocated
			for _, i := range localIdx {
				grants[i].BW *= scale
			}
			allocated = avail
		}
		remaining := avail - allocated
		residualTotal := 0.0
		for _, i := range localIdx {
			residualTotal += reqs[i].Demand - grants[i].BW
		}
		if remaining > 1e-12 && residualTotal > 1e-12 {
			share := remaining / residualTotal
			if share > 1 {
				share = 1
			}
			for _, i := range localIdx {
				grants[i].BW += (reqs[i].Demand - grants[i].BW) * share
			}
		}

		// Statistics.
		st := &a.stats[h]
		for _, i := range localIdx {
			st.LocalGB += grants[i].BW * dt
		}
		for _, i := range remoteIdx {
			st.RemoteGB += grants[i].BW * dt
		}
		if remoteServed+avail-remaining > 1e-12 || remoteServed > 1e-12 {
			st.BusySeconds += dt
		}
	}
	return grants
}

// ResetStats zeroes the accumulated statistics.
func (a *Arbiter) ResetStats() {
	for i := range a.stats {
		a.stats[i] = NodeStats{}
	}
}
