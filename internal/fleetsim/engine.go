package fleetsim

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/roofline"
)

// Engine runs one scenario against a live in-process fleet: real
// coopd member daemons (plain or HA replica pairs) behind a
// faultinject partition fabric, the real Inventory/Placer/Rebalancer
// on top, and the invariant checker after every round.
type Engine struct {
	sc   *Scenario
	logf func(format string, args ...any)

	part    *faultinject.Partition
	inv     *fleet.Inventory
	placer  *fleet.Placer
	reb     *fleet.Rebalancer
	upg     *fleet.Upgrader // non-nil once an "upgrade" event started one
	members map[string]*simMember
	clients map[string][]*client.Client // member ID -> one client per endpoint

	trueAI map[string]float64 // app name -> measured intensity (0: honest)
	pools  map[string][]string

	check          *checker
	verdict        *Verdict
	lastPerturb    int
	lastActive     int
	driftConfirmed map[string]float64
	fittedSeen     map[string]float64

	// Simulated clock: the inventory's flap/quarantine timing runs on
	// epoch + simRound seconds, one tick per round, so backoff expiry is
	// a property of the trace, not of how fast the host ran the rounds.
	epoch    time.Time
	simRound int
}

// EngineConfig tunes a scenario run.
type EngineConfig struct {
	// Logf receives progress logs (nil: silent).
	Logf func(format string, args ...any)
}

// NewEngine validates the scenario and boots its initial machines.
// Close must be called to tear the member daemons down.
func NewEngine(sc *Scenario, cfg EngineConfig) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		sc:             sc,
		logf:           cfg.Logf,
		part:           faultinject.NewPartition(),
		members:        map[string]*simMember{},
		clients:        map[string][]*client.Client{},
		trueAI:         map[string]float64{},
		pools:          map[string][]string{},
		check:          newChecker(sc),
		lastPerturb:    -1,
		lastActive:     -1,
		driftConfirmed: map[string]float64{},
		fittedSeen:     map[string]float64{},
		epoch:          time.Now(),
	}
	e.verdict = &Verdict{
		Scenario:      sc.Name,
		Seed:          sc.Seed,
		Rounds:        sc.Rounds,
		MovesByReason: map[string]int{},
	}
	e.inv = fleet.NewInventory(fleet.InventoryConfig{
		NewClient:         e.newClient,
		FailAfter:         sc.failAfter(),
		PollTimeout:       5 * time.Second,
		Clock:             func() time.Time { return e.epoch.Add(time.Duration(e.simRound) * time.Second) },
		FlapCount:         sc.flapCount(),
		FlapWindow:        time.Duration(sc.FlapWindowSeconds) * time.Second,
		QuarantineBackoff: time.Duration(sc.QuarantineBackoffSeconds) * time.Second,
		Logf:              e.log,
	})
	sc2 := fleet.NewScorer()
	sc2.DomainSpread = sc.DomainSpread
	objective, err := roofline.ObjectiveSpecByName(sc.Objective)
	if err != nil {
		return nil, err // Validate caught this already; belt and braces
	}
	sc2.Objective = objective
	e.placer = &fleet.Placer{
		Inv: e.inv, Scorer: sc2,
		DisablePreemption: sc.DisablePreemption,
		Logf:              e.log,
	}
	cooldown := sc.CooldownRounds
	if sc.DisableAntiThrash {
		cooldown = -1
	}
	e.reb = &fleet.Rebalancer{
		Inv:               e.inv,
		Placer:            e.placer,
		Scorer:            sc2,
		MaxMovesPerRound:  sc.MaxMovesPerRound,
		Threshold:         sc.Threshold,
		CooldownRounds:    cooldown,
		StormFraction:     sc.StormFraction,
		StormBudget:       sc.StormBudget,
		AdmissionCap:      sc.AdmissionCap,
		DisableStormBrake: sc.DisableStormBrake,
		DisablePreemption: sc.DisablePreemption,
		Logf:              e.log,
	}
	for _, ms := range sc.Machines {
		if err := e.addMachine(ms); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

func (e *Engine) log(format string, args ...any) {
	if e.logf != nil {
		e.logf(format, args...)
	}
}

// newClient builds a partition-fabric client for one endpoint: every
// call — inventory polls, placements, moves, telemetry — crosses the
// same injectable network.
func (e *Engine) newClient(endpoint string) *client.Client {
	return client.New(endpoint, client.Config{
		HTTPClient:  &http.Client{Transport: e.part.Transport(nil)},
		MaxAttempts: 1,
		// A short deadline keeps rounds brisk: a partitioned member's poll
		// fails on connect, not on a long timeout.
		RequestTimeout: 2 * time.Second,
	})
}

func (e *Engine) addMachine(ms MachineSpec) error {
	m, err := startMember(ms)
	if err != nil {
		return fmt.Errorf("fleetsim: starting member %s: %w", ms.ID, err)
	}
	e.members[ms.ID] = m
	for _, ep := range m.endpoints() {
		e.clients[ms.ID] = append(e.clients[ms.ID], e.newClient(ep))
	}
	if err := e.inv.AddDomain(ms.ID, ms.Domain, m.endpoints()...); err != nil {
		return err
	}
	return nil
}

// Close tears down every member daemon and their state dirs.
func (e *Engine) Close() {
	for _, m := range e.members {
		m.close()
	}
}

// perturb marks a round as externally perturbed for the convergence
// invariant.
func (e *Engine) perturb(round int, format string, args ...any) {
	e.lastPerturb = round
	e.log("fleetsim[%s] round %d: %s", e.sc.Name, round, fmt.Sprintf(format, args...))
}

// register places an app: through the Placer (the fleet's front door)
// or, when machineID is set, directly on that member's coopd — an app
// arriving behind the fleet's back, picked up by the next poll.
func (e *Engine) register(ctx context.Context, def AppDef, machineID string) error {
	if def.TrueAI > 0 {
		e.trueAI[def.Name] = def.TrueAI
	} else {
		delete(e.trueAI, def.Name)
	}
	spec := fleet.AppSpec{
		Name: def.Name, AI: def.AI, Placement: def.Placement,
		HomeNode: def.HomeNode, MaxThreads: def.MaxThreads,
		Priority: def.Priority,
	}
	if machineID == "" {
		_, _, err := e.placer.Place(ctx, spec)
		return err
	}
	// Pinned registration bypasses the Placer, so the fleet would never
	// learn the class from the member's priority-less registry; teach
	// the inventory directly and let the next poll stamp it on.
	if def.Priority != "" {
		if err := e.inv.RecordPriority(def.Name, def.Priority); err != nil {
			return err
		}
	}
	req := ctrlplane.RegisterRequest{
		Name: spec.Name, AI: spec.AI, Placement: spec.Placement,
		HomeNode: spec.HomeNode, MaxThreads: spec.MaxThreads, TTLMillis: spec.TTLMillis,
	}
	var lastErr error
	for _, cli := range e.clients[machineID] {
		if _, err := cli.Register(ctx, req); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("fleetsim: registering %s on %s: %w", def.Name, machineID, lastErr)
}

// deregister removes an app by name wherever the inventory sees it
// (stale duplicates excluded — the rebalancer owns those).
func (e *Engine) deregister(ctx context.Context, name string) error {
	for _, m := range e.inv.Snapshot() {
		stale := map[string]bool{}
		for _, id := range m.Stale {
			stale[id] = true
		}
		for _, a := range m.Apps {
			if a.Name != name || stale[a.ID] {
				continue
			}
			var lastErr error
			for _, cli := range e.clients[m.ID] {
				if err := cli.Deregister(ctx, a.ID); err != nil {
					lastErr = err
					continue
				}
				return nil
			}
			return fmt.Errorf("fleetsim: deregistering %s from %s: %w", name, m.ID, lastErr)
		}
	}
	return fmt.Errorf("fleetsim: deregistering %s: not found on any member", name)
}

// applyArrivals drives each arrival process toward its target
// population for the round.
func (e *Engine) applyArrivals(ctx context.Context, round int) error {
	for i := range e.sc.Arrivals {
		a := &e.sc.Arrivals[i]
		pool := e.pools[a.Prefix]
		target := a.populationAt(round)
		for len(pool) < target {
			def := a.app(len(pool))
			if err := e.register(ctx, def, ""); err != nil {
				return err
			}
			pool = append(pool, def.Name)
			e.perturb(round, "arrival %s: +%s (%d/%d)", a.Prefix, def.Name, len(pool), target)
		}
		for len(pool) > target {
			name := pool[len(pool)-1]
			if err := e.deregister(ctx, name); err != nil {
				return err
			}
			pool = pool[:len(pool)-1]
			e.perturb(round, "arrival %s: -%s (%d/%d)", a.Prefix, name, len(pool), target)
		}
		e.pools[a.Prefix] = pool
	}
	return nil
}

// applyEvents runs the round's scripted perturbations.
func (e *Engine) applyEvents(ctx context.Context, round int) error {
	for _, ev := range e.sc.Events {
		if ev.Round != round {
			continue
		}
		switch ev.Action {
		case "register":
			if err := e.register(ctx, *ev.App, ev.Machine); err != nil {
				return err
			}
			e.perturb(round, "register %s (machine=%q)", ev.App.Name, ev.Machine)
		case "deregister":
			if err := e.deregister(ctx, ev.AppName); err != nil {
				return err
			}
			e.perturb(round, "deregister %s", ev.AppName)
		case "kill":
			for _, h := range e.members[ev.Machine].hosts {
				e.part.Isolate(h)
			}
			e.perturb(round, "kill %s (partitioned)", ev.Machine)
		case "revive":
			for _, h := range e.members[ev.Machine].hosts {
				e.part.Heal(h)
			}
			e.perturb(round, "revive %s (healed)", ev.Machine)
		case "drain":
			if err := e.inv.SetDraining(ev.Machine, true); err != nil {
				return fmt.Errorf("fleetsim: drain at round %d: %w", round, err)
			}
			e.perturb(round, "drain %s", ev.Machine)
		case "undrain":
			if err := e.inv.SetDraining(ev.Machine, false); err != nil {
				return fmt.Errorf("fleetsim: undrain at round %d: %w", round, err)
			}
			e.perturb(round, "undrain %s", ev.Machine)
		case "join":
			if err := e.addMachine(*ev.Join); err != nil {
				return err
			}
			e.perturb(round, "join %s (model=%s)", ev.Join.ID, ev.Join.Model)
		case "kill_leader":
			m := e.members[ev.Machine]
			leader := m.leader()
			if leader == nil {
				return fmt.Errorf("fleetsim: kill_leader at round %d: member %s has no live leader", round, ev.Machine)
			}
			// Controlled-failover drill: let the async pull loop catch the
			// follower up first, so the kill tests durability of replicated
			// state instead of racing the replication interval.
			if err := m.waitReplicated(ctx, 10*time.Second); err != nil {
				return err
			}
			leader.kill()
			if err := m.waitLeader(10 * time.Second); err != nil {
				return err
			}
			e.verdict.LeaderKills++
			e.perturb(round, "kill_leader %s: killed %s, survivor promoted", ev.Machine, leader.url)
		case "set_true_ai":
			e.trueAI[ev.AppName] = ev.TrueAI
			e.perturb(round, "set_true_ai %s -> %g", ev.AppName, ev.TrueAI)
		case "upgrade":
			if ev.Parallel {
				// The naive variant: drain the whole fleet at once, no
				// controller. Exists to demonstrate the capacity-floor
				// invariant failing without rolling orchestration.
				for _, m := range e.inv.Snapshot() {
					if err := e.inv.SetDraining(m.ID, true); err != nil {
						return fmt.Errorf("fleetsim: parallel upgrade at round %d: %w", round, err)
					}
				}
				e.perturb(round, "upgrade (parallel: whole fleet draining)")
				continue
			}
			e.upg = &fleet.Upgrader{Inv: e.inv, Logf: e.log}
			if _, err := e.upg.Start(nil, ev.HealthFloor); err != nil {
				return fmt.Errorf("fleetsim: upgrade at round %d: %w", round, err)
			}
			e.perturb(round, "upgrade started (health floor %g)", ev.HealthFloor)
		}
	}
	return nil
}

// streamTelemetry re-simulates every recalibrating healthy member's
// apps with taskrt/memsim and reports the observed rates, then reads
// back the members' drift views to fold confirmations into the verdict
// (a confirmed drift re-solves the member — a model perturbation the
// convergence clock must account for).
func (e *Engine) streamTelemetry(ctx context.Context, round int) {
	trueAI := func(name string) float64 { return e.trueAI[name] }
	for idx, m := range e.inv.Snapshot() {
		sm := e.members[m.ID]
		if sm == nil || !sm.spec.Recalibrate || !m.Healthy() || len(m.Apps) == 0 {
			continue
		}
		clis := e.clients[m.ID]
		var alloc *ctrlplane.AllocationsResponse
		for _, cli := range clis {
			a, err := cli.Allocations(ctx)
			if err != nil {
				continue
			}
			alloc = a
			break
		}
		if alloc == nil {
			continue
		}
		seed := e.sc.Seed*1_000_003 + int64(round)*101 + int64(idx)
		rates := simulateMember(m, alloc, trueAI, seed, e.sc.simSeconds())
		if err := reportRates(ctx, clis, rates); err != nil {
			e.log("fleetsim[%s] round %d: telemetry to %s: %v", e.sc.Name, round, m.ID, err)
		}
		for _, cli := range clis {
			apps, err := cli.Apps(ctx)
			if err != nil {
				continue
			}
			for _, v := range apps.Apps {
				if !v.Drifted || v.FittedAI <= 0 {
					continue
				}
				prev, seen := e.fittedSeen[v.Name]
				if !seen || math.Abs(prev-v.FittedAI) > 0.01*prev {
					e.fittedSeen[v.Name] = v.FittedAI
					e.driftConfirmed[v.Name] = v.FittedAI
					e.perturb(round, "drift confirmed: %s fitted AI %.3g", v.Name, v.FittedAI)
				}
			}
			break
		}
	}
}

func memberAppsBrief(m fleet.Member) []string {
	out := make([]string, 0, len(m.Apps))
	for _, a := range m.Apps {
		s := fmt.Sprintf("%s@%.2g", a.Name, a.AI)
		if a.Drifted {
			s += fmt.Sprintf("(fit %.2g)", a.FittedAI)
		}
		out = append(out, s)
	}
	return out
}

// Run drives the scenario to completion and returns its verdict. An
// error means the harness itself failed (a member would not boot, an
// event was impossible); invariant failures land in the verdict.
func (e *Engine) Run(ctx context.Context) (*Verdict, error) {
	sc := e.sc
	// Prime the inventory before round 0: the Placer routes arrivals by
	// the latest snapshots, which otherwise would not exist yet.
	e.inv.Poll(ctx)
	start := time.Now()
	for round := 0; round < sc.Rounds; round++ {
		e.simRound = round
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.applyArrivals(ctx, round); err != nil {
			return nil, err
		}
		if err := e.applyEvents(ctx, round); err != nil {
			return nil, err
		}

		plan, err := e.reb.Round(ctx)
		if err != nil {
			// Execute errors (e.g. a move raced a kill) are part of the
			// stress: the next round re-plans. Log and carry on.
			e.log("fleetsim[%s] round %d: rebalance: %v", sc.Name, round, err)
		}
		if plan == nil {
			continue
		}

		e.check.checkBudget(round, plan)
		e.check.recordMoves(round, plan)
		e.check.checkExactlyOnce(round, e.inv.Snapshot())
		e.check.checkStorm(round, plan)
		e.check.checkCapacityFloor(round, e.inv.Snapshot())
		if e.check.checkPriorityInversion(round, e.inv.Snapshot()) {
			e.verdict.InversionRounds++
		}

		e.verdict.TotalMoves += len(plan.Moves)
		e.verdict.Deferred += plan.Deferred
		if plan.StormActive {
			e.verdict.StormRounds++
		}
		if e.upg != nil {
			if msg := e.upg.Step(ctx); msg != "" {
				e.perturb(round, "%s", msg)
			}
		}
		if len(plan.Moves) > e.verdict.MaxRoundMoves {
			e.verdict.MaxRoundMoves = len(plan.Moves)
		}
		for _, mv := range plan.Moves {
			e.verdict.MovesByReason[mv.Reason]++
		}
		if len(plan.Moves) > 0 || len(plan.StaleDeregs) > 0 || plan.Deferred > 0 {
			e.lastActive = round
			e.log("fleetsim[%s] round %d: %d moves, %d stale cleanups, %d deferred (budget %d)",
				sc.Name, round, len(plan.Moves), len(plan.StaleDeregs), plan.Deferred, plan.Budget)
		}
		e.log("fleetsim[%s] round %d: current %.1f GFLOPS vs repack %.1f",
			sc.Name, round, plan.CurrentGFLOPS, plan.RepackGFLOPS)
		for _, m := range e.inv.Snapshot() {
			e.log("fleetsim[%s] round %d:   member %s dead=%v fail=%d apps=%d total=%.1f %v",
				sc.Name, round, m.ID, m.Dead, m.Failures, len(m.Apps), m.TotalGFLOPS, memberAppsBrief(m))
		}

		if sc.Telemetry {
			e.streamTelemetry(ctx, round)
		}
	}
	elapsed := time.Since(start)
	e.verdict.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		e.verdict.RoundsPerSec = float64(sc.Rounds) / elapsed.Seconds()
	}

	e.simRound = sc.Rounds
	e.inv.Poll(ctx)
	total := 0.0
	for _, m := range e.inv.Snapshot() {
		if m.Healthy() && !m.Draining {
			total += m.TotalGFLOPS
		}
	}
	e.verdict.FinalAggregateGFLOPS = total

	e.check.checkConvergence(e.lastPerturb, e.lastActive)
	e.check.checkReadmission(e.inv.Snapshot())
	e.verdict.LastPerturbRound = e.lastPerturb
	e.verdict.LastActiveRound = e.lastActive
	if e.upg != nil {
		st := e.upg.Status()
		e.verdict.UpgradeState = st.State
		e.verdict.Upgraded = len(st.Done)
	}
	if len(e.driftConfirmed) > 0 {
		e.verdict.DriftConfirmed = e.driftConfirmed
	}
	e.verdict.Violations = e.check.violations
	e.verdict.Passed = len(e.check.violations) == 0
	return e.verdict, nil
}

// RunScenario is the one-call form: boot, run, tear down.
func RunScenario(ctx context.Context, sc *Scenario, cfg EngineConfig) (*Verdict, error) {
	e, err := NewEngine(sc, cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Run(ctx)
}

// Inventory exposes the engine's inventory for test assertions.
func (e *Engine) Inventory() *fleet.Inventory { return e.inv }

// Rebalancer exposes the engine's rebalancer for test assertions.
func (e *Engine) Rebalancer() *fleet.Rebalancer { return e.reb }
