package fleetsim

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func corpusScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	for _, sc := range corpus {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in corpus", name)
	return nil
}

func TestCorpusLoadsAndValidates(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	want := map[string]bool{
		"diurnal":           false,
		"flash_crowd":       false,
		"autoscale_churn":   false,
		"misdeclared_drift": false,
		"flapping":          false,
		"scale_out":         false,
	}
	for _, sc := range corpus {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", sc.Name, err)
		}
		if _, ok := want[sc.Name]; !ok {
			t.Errorf("unexpected scenario %q in corpus", sc.Name)
			continue
		}
		want[sc.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("scenario %q missing from corpus", name)
		}
	}
}

// TestCorpusScenariosPassInvariants is the headline acceptance check: every
// checked-in trace runs against the live fleet stack and every stability
// invariant holds.
func TestCorpusScenariosPassInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run boots live coopd members; skipped in -short")
	}
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	for _, sc := range corpus {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			v, err := RunScenario(testCtx(t), sc, EngineConfig{Logf: t.Logf})
			if err != nil {
				t.Fatalf("RunScenario: %v", err)
			}
			if !v.Passed {
				for _, viol := range v.Violations {
					t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
				}
				t.Fatalf("scenario %s failed %d invariant(s)", sc.Name, len(v.Violations))
			}
			if v.TotalMoves > 0 && v.MaxRoundMoves > maxMovesFor(sc) {
				t.Errorf("max round moves %d exceeds budget %d", v.MaxRoundMoves, maxMovesFor(sc))
			}
			if v.ElapsedSeconds <= 0 || v.RoundsPerSec <= 0 {
				t.Errorf("verdict missing throughput: elapsed=%g rounds/sec=%g", v.ElapsedSeconds, v.RoundsPerSec)
			}
			t.Logf("verdict: moves=%d deferred=%d byReason=%v lastPerturb=%d lastActive=%d aggGFLOPS=%.1f rounds/sec=%.1f",
				v.TotalMoves, v.Deferred, v.MovesByReason, v.LastPerturbRound, v.LastActiveRound, v.FinalAggregateGFLOPS, v.RoundsPerSec)
		})
	}
}

func maxMovesFor(sc *Scenario) int {
	if sc.MaxMovesPerRound > 0 {
		return sc.MaxMovesPerRound
	}
	return 4
}

// TestFlappingDeterministic runs the same scenario twice and demands
// bit-identical verdicts: the harness is seeded and deterministic.
func TestFlappingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sc := corpusScenario(t, "flapping")
	var got [2][]byte
	for i := range got {
		v, err := RunScenario(testCtx(t), sc, EngineConfig{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// Wall-clock throughput is the one legitimately nondeterministic
		// verdict output; zero it before the bitwise comparison.
		v.ElapsedSeconds, v.RoundsPerSec = 0, 0
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got[i] = b
	}
	if string(got[0]) != string(got[1]) {
		t.Fatalf("verdicts differ across identical runs:\n  run0: %s\n  run1: %s", got[0], got[1])
	}
}

// TestOscillationRegressionWithoutAntiThrash demonstrates the pre-hardening
// rebalancer failing the oscillation invariant on the flapping trace, and the
// cooldown-hardened rebalancer passing the same trace. This is the regression
// that keeps the anti-thrash guard honest.
func TestOscillationRegressionWithoutAntiThrash(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "flapping")

	unguarded := *base
	unguarded.Name = "flapping-unguarded"
	unguarded.DisableAntiThrash = true
	// The convergence clock is not the point of this regression (a
	// thrashing rebalancer may or may not settle); give it slack so the
	// only expected failure is the oscillation invariant.
	unguarded.ConvergeWithin = base.Rounds

	v, err := RunScenario(testCtx(t), &unguarded, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(unguarded): %v", err)
	}
	if v.Passed {
		t.Fatalf("pre-hardening rebalancer unexpectedly passed the flapping trace (moves=%d)", v.TotalMoves)
	}
	sawOscillation := false
	for _, viol := range v.Violations {
		t.Logf("unguarded violation: round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		if viol.Invariant == "no-oscillation" {
			sawOscillation = true
		}
	}
	if !sawOscillation {
		t.Fatalf("expected a no-oscillation violation from the unguarded rebalancer, got %v", v.Violations)
	}

	guarded, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(guarded): %v", err)
	}
	if !guarded.Passed {
		t.Fatalf("hardened rebalancer failed the same trace: %v", guarded.Violations)
	}
	if guarded.TotalMoves >= v.TotalMoves {
		t.Errorf("hardening should damp churn: guarded=%d moves, unguarded=%d", guarded.TotalMoves, v.TotalMoves)
	}
}

// TestDriftScenarioConvergesThroughLeaderKill runs the telemetry-driven
// mis-declared-AI trace: the wolf's fitted model must converge to its true
// arithmetic intensity using only taskrt/memsim-streamed /v1/report samples,
// and the run must survive a mid-scenario leader kill on the HA member.
func TestDriftScenarioConvergesThroughLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sc := corpusScenario(t, "misdeclared_drift")
	v, err := RunScenario(testCtx(t), sc, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if !v.Passed {
		for _, viol := range v.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("drift scenario failed invariants")
	}
	if v.LeaderKills < 1 {
		t.Fatalf("scenario should have killed at least one leader, got %d", v.LeaderKills)
	}
	fitted, ok := v.DriftConfirmed["wolf"]
	if !ok {
		t.Fatalf("wolf drift never confirmed; DriftConfirmed=%v", v.DriftConfirmed)
	}
	// Declared AI 0.5, true AI 10: the fitted model must land near the
	// truth, not the declaration.
	if fitted < 5 || fitted > 20 {
		t.Fatalf("wolf fitted AI %.2f not near true AI 10", fitted)
	}
	// Post-correction the fleet should be near the compute-bound optimum:
	// wolf alone on a-ha ~= 320 GFLOPS, three mem apps on b-plain ~= 64.
	if v.FinalAggregateGFLOPS < 300 {
		t.Fatalf("final aggregate %.1f GFLOPS; want >= 300 after drift correction", v.FinalAggregateGFLOPS)
	}
}
