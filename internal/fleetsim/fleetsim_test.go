package fleetsim

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func corpusScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	for _, sc := range corpus {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in corpus", name)
	return nil
}

func TestCorpusLoadsAndValidates(t *testing.T) {
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	want := map[string]bool{
		"diurnal":                false,
		"flash_crowd":            false,
		"autoscale_churn":        false,
		"misdeclared_drift":      false,
		"flapping":               false,
		"scale_out":              false,
		"correlated_failure":     false,
		"partition_flap":         false,
		"rolling_upgrade":        false,
		"drift_storm":            false,
		"priority_inversion":     false,
		"quarantine_readmission": false,
		"upgrade_failure_race":   false,
	}
	for _, sc := range corpus {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", sc.Name, err)
		}
		if _, ok := want[sc.Name]; !ok {
			t.Errorf("unexpected scenario %q in corpus", sc.Name)
			continue
		}
		want[sc.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("scenario %q missing from corpus", name)
		}
	}
}

// TestCorpusScenariosPassInvariants is the headline acceptance check: every
// checked-in trace runs against the live fleet stack and every stability
// invariant holds.
func TestCorpusScenariosPassInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run boots live coopd members; skipped in -short")
	}
	corpus, err := Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	for _, sc := range corpus {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			v, err := RunScenario(testCtx(t), sc, EngineConfig{Logf: t.Logf})
			if err != nil {
				t.Fatalf("RunScenario: %v", err)
			}
			if !v.Passed {
				for _, viol := range v.Violations {
					t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
				}
				t.Fatalf("scenario %s failed %d invariant(s)", sc.Name, len(v.Violations))
			}
			if v.TotalMoves > 0 && v.MaxRoundMoves > maxMovesFor(sc) {
				t.Errorf("max round moves %d exceeds budget %d", v.MaxRoundMoves, maxMovesFor(sc))
			}
			if v.ElapsedSeconds <= 0 || v.RoundsPerSec <= 0 {
				t.Errorf("verdict missing throughput: elapsed=%g rounds/sec=%g", v.ElapsedSeconds, v.RoundsPerSec)
			}
			t.Logf("verdict: moves=%d deferred=%d byReason=%v lastPerturb=%d lastActive=%d aggGFLOPS=%.1f rounds/sec=%.1f",
				v.TotalMoves, v.Deferred, v.MovesByReason, v.LastPerturbRound, v.LastActiveRound, v.FinalAggregateGFLOPS, v.RoundsPerSec)
		})
	}
}

func maxMovesFor(sc *Scenario) int {
	if sc.MaxMovesPerRound > 0 {
		return sc.MaxMovesPerRound
	}
	return 4
}

// TestFlappingDeterministic runs the same scenario twice and demands
// bit-identical verdicts: the harness is seeded and deterministic.
func TestFlappingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sc := corpusScenario(t, "flapping")
	var got [2][]byte
	for i := range got {
		v, err := RunScenario(testCtx(t), sc, EngineConfig{})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// Wall-clock throughput is the one legitimately nondeterministic
		// verdict output; zero it before the bitwise comparison.
		v.ElapsedSeconds, v.RoundsPerSec = 0, 0
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got[i] = b
	}
	if string(got[0]) != string(got[1]) {
		t.Fatalf("verdicts differ across identical runs:\n  run0: %s\n  run1: %s", got[0], got[1])
	}
}

// TestOscillationRegressionWithoutAntiThrash demonstrates the pre-hardening
// rebalancer failing the oscillation invariant on the flapping trace, and the
// cooldown-hardened rebalancer passing the same trace. This is the regression
// that keeps the anti-thrash guard honest.
func TestOscillationRegressionWithoutAntiThrash(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "flapping")

	unguarded := *base
	unguarded.Name = "flapping-unguarded"
	unguarded.DisableAntiThrash = true
	// The convergence clock is not the point of this regression (a
	// thrashing rebalancer may or may not settle); give it slack so the
	// only expected failure is the oscillation invariant.
	unguarded.ConvergeWithin = base.Rounds

	v, err := RunScenario(testCtx(t), &unguarded, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(unguarded): %v", err)
	}
	if v.Passed {
		t.Fatalf("pre-hardening rebalancer unexpectedly passed the flapping trace (moves=%d)", v.TotalMoves)
	}
	sawOscillation := false
	for _, viol := range v.Violations {
		t.Logf("unguarded violation: round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		if viol.Invariant == "no-oscillation" {
			sawOscillation = true
		}
	}
	if !sawOscillation {
		t.Fatalf("expected a no-oscillation violation from the unguarded rebalancer, got %v", v.Violations)
	}

	guarded, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(guarded): %v", err)
	}
	if !guarded.Passed {
		t.Fatalf("hardened rebalancer failed the same trace: %v", guarded.Violations)
	}
	if guarded.TotalMoves >= v.TotalMoves {
		t.Errorf("hardening should damp churn: guarded=%d moves, unguarded=%d", guarded.TotalMoves, v.TotalMoves)
	}
}

// TestCorrelatedFailureStormRegression is the A/B pair for the storm
// brake: the hardened rebalancer triages the rack death under the storm
// budget and admission cap; the same trace with the brake disabled
// evacuates everything at once and violates both bounds.
func TestCorrelatedFailureStormRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "correlated_failure")

	hardened, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(hardened): %v", err)
	}
	if !hardened.Passed {
		for _, viol := range hardened.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("hardened rebalancer failed the correlated-failure trace")
	}
	if hardened.StormRounds < 1 {
		t.Errorf("storm brake never engaged: StormRounds=%d", hardened.StormRounds)
	}
	if hardened.Deferred == 0 {
		t.Errorf("triage should defer evacuations past the storm budget; Deferred=0")
	}

	unbraked := *base
	unbraked.Name = "correlated_failure-unbraked"
	unbraked.DisableStormBrake = true
	v, err := RunScenario(testCtx(t), &unbraked, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(unbraked): %v", err)
	}
	if v.Passed {
		t.Fatalf("unbraked rebalancer unexpectedly passed the correlated-failure trace (moves=%d)", v.TotalMoves)
	}
	saw := map[string]bool{}
	for _, viol := range v.Violations {
		t.Logf("unbraked violation: round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		saw[viol.Invariant] = true
	}
	if !saw["bounded-churn"] {
		t.Errorf("expected a bounded-churn violation without the storm brake, got %v", v.Violations)
	}
	if !saw["survivor-admission"] {
		t.Errorf("expected a survivor-admission violation without the storm brake, got %v", v.Violations)
	}
	if v.StormRounds != 0 {
		t.Errorf("disabled brake still reported %d storm rounds", v.StormRounds)
	}
}

// TestPartitionFlapQuarantineRegression is the A/B pair for the flap
// detector: with quarantine on, the flapping member is benched after
// its third transition and the churn stops; with quarantine off, every
// flap cycle keeps evacuating — individually legitimate urgent legs
// that only the flap-churn invariant catches.
func TestPartitionFlapQuarantineRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "partition_flap")

	hardened, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(hardened): %v", err)
	}
	if !hardened.Passed {
		for _, viol := range hardened.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("quarantine-hardened fleet failed the partition-flap trace")
	}
	if hardened.MovesByReason[fleet.ReasonMachineLost]+hardened.MovesByReason[fleet.ReasonQuarantine] > base.MaxMachineLostPerMember {
		t.Errorf("hardened run exceeded the urgent-evacuation cap: byReason=%v", hardened.MovesByReason)
	}

	unquarantined := *base
	unquarantined.Name = "partition_flap-unquarantined"
	unquarantined.DisableQuarantine = true
	v, err := RunScenario(testCtx(t), &unquarantined, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(unquarantined): %v", err)
	}
	if v.Passed {
		t.Fatalf("unquarantined fleet unexpectedly passed the partition-flap trace (moves=%d)", v.TotalMoves)
	}
	sawFlapChurn := false
	for _, viol := range v.Violations {
		t.Logf("unquarantined violation: round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		if viol.Invariant == "flap-churn" {
			sawFlapChurn = true
		}
	}
	if !sawFlapChurn {
		t.Fatalf("expected a flap-churn violation without quarantine, got %v", v.Violations)
	}
	if v.TotalMoves <= hardened.TotalMoves {
		t.Errorf("quarantine should damp churn: hardened=%d moves, unquarantined=%d", hardened.TotalMoves, v.TotalMoves)
	}
}

// TestRollingUpgradeParallelRegression is the A/B pair for the upgrade
// controller: the rolling drain completes all four machines while the
// placeable fraction never dips below the capacity floor; the naive
// all-at-once variant drains the whole fleet and fails the floor
// immediately.
func TestRollingUpgradeParallelRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "rolling_upgrade")

	rolling, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(rolling): %v", err)
	}
	if !rolling.Passed {
		for _, viol := range rolling.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("rolling upgrade failed invariants")
	}
	if rolling.UpgradeState != "done" {
		t.Errorf("upgrade state %q; want done", rolling.UpgradeState)
	}
	if rolling.Upgraded != len(base.Machines) {
		t.Errorf("upgraded %d machines; want %d", rolling.Upgraded, len(base.Machines))
	}

	parallel := *base
	parallel.Name = "rolling_upgrade-parallel"
	parallel.Events = append([]Event(nil), base.Events...)
	for i := range parallel.Events {
		if parallel.Events[i].Action == "upgrade" {
			parallel.Events[i].Parallel = true
		}
	}
	// A fleet drained whole never converges or re-homes anything; the
	// capacity floor is the one invariant this regression is about.
	parallel.ConvergeWithin = parallel.Rounds
	v, err := RunScenario(testCtx(t), &parallel, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(parallel): %v", err)
	}
	if v.Passed {
		t.Fatalf("all-at-once upgrade unexpectedly passed the trace")
	}
	sawFloor := false
	for _, viol := range v.Violations {
		if viol.Invariant == "capacity-floor" {
			sawFloor = true
			break
		}
	}
	if !sawFloor {
		t.Fatalf("expected a capacity-floor violation from the parallel upgrade, got %v", v.Violations)
	}
}

// TestDriftStormBudget runs the correlated-misdeclaration trace: four
// wolves confirm drift at once, and the re-solve must be rationed to
// the 1-move round budget — corrections spread over rounds, the rest
// deferred, never a burst.
func TestDriftStormBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sc := corpusScenario(t, "drift_storm")
	v, err := RunScenario(testCtx(t), sc, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if !v.Passed {
		for _, viol := range v.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("drift storm failed invariants")
	}
	if v.MaxRoundMoves > 1 {
		t.Errorf("budget 1 but a round executed %d moves", v.MaxRoundMoves)
	}
	if v.MovesByReason[fleet.ReasonDrift] < 2 {
		t.Errorf("expected at least 2 drift corrections, byReason=%v", v.MovesByReason)
	}
	if v.Deferred == 0 {
		t.Errorf("a 1-move budget against 4 simultaneous drift confirmations should defer work; Deferred=0")
	}
	if len(v.DriftConfirmed) < 2 {
		t.Errorf("expected multiple wolves confirmed, DriftConfirmed=%v", v.DriftConfirmed)
	}
}

// TestPriorityInversionPreemptionRegression is the A/B pair for the
// preemption pass: machine loss on a full fleet strands the latency app
// over a survivor's floor, preemption evicts batch work until the host
// is floor-feasible again, and the inversion clears inside the
// tolerance. The same trace with preemption disabled leaves the
// latency app starved and violates the no-priority-inversion
// invariant.
func TestPriorityInversionPreemptionRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "priority_inversion")

	hardened, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(hardened): %v", err)
	}
	if !hardened.Passed {
		for _, viol := range hardened.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("preemption-hardened fleet failed the priority-inversion trace")
	}
	if hardened.MovesByReason[fleet.ReasonPreempt] < 1 {
		t.Errorf("expected preempt moves to repair the inversion, byReason=%v", hardened.MovesByReason)
	}
	if hardened.InversionRounds < 1 {
		t.Errorf("trace never exhibited an inversion — the invariant is vacuous; InversionRounds=%d", hardened.InversionRounds)
	}

	unpreempted := *base
	unpreempted.Name = "priority_inversion-unpreempted"
	unpreempted.DisablePreemption = true
	// Without the repair pass the fleet may never settle; the inversion
	// invariant is the one this regression is about.
	unpreempted.ConvergeWithin = unpreempted.Rounds
	v, err := RunScenario(testCtx(t), &unpreempted, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(unpreempted): %v", err)
	}
	if v.Passed {
		t.Fatalf("preemption-disabled fleet unexpectedly passed the trace (moves=%d)", v.TotalMoves)
	}
	sawInversion := false
	for _, viol := range v.Violations {
		t.Logf("unpreempted violation: round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		if viol.Invariant == "priority-inversion" {
			sawInversion = true
		}
	}
	if !sawInversion {
		t.Fatalf("expected a priority-inversion violation without preemption, got %v", v.Violations)
	}
	if v.MovesByReason[fleet.ReasonPreempt] != 0 {
		t.Errorf("disabled preemption still moved apps: byReason=%v", v.MovesByReason)
	}
}

// TestQuarantineReadmissionRegression is the A/B pair for quarantine
// re-admission: the forgiven flapper is re-admitted when its backoff
// expires and wins the post-readmission flash crowd (final_min_apps);
// while benched, rogue behind-the-back registrations are pushed off
// with quarantine moves. The same trace with a 600s backoff never
// re-admits the member and fails the readmission invariant.
func TestQuarantineReadmissionRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	base := corpusScenario(t, "quarantine_readmission")

	forgiven, err := RunScenario(testCtx(t), base, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(forgiven): %v", err)
	}
	if !forgiven.Passed {
		for _, viol := range forgiven.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("forgiven fleet failed the quarantine-readmission trace")
	}
	if forgiven.MovesByReason[fleet.ReasonQuarantine] < 2 {
		t.Errorf("expected the rogue apps pushed off the benched member, byReason=%v", forgiven.MovesByReason)
	}

	unforgiven := *base
	unforgiven.Name = "quarantine_readmission-unforgiven"
	unforgiven.QuarantineBackoffSeconds = 600
	v, err := RunScenario(testCtx(t), &unforgiven, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario(unforgiven): %v", err)
	}
	if v.Passed {
		t.Fatalf("never-readmitted member unexpectedly passed the trace")
	}
	sawReadmission := false
	for _, viol := range v.Violations {
		t.Logf("unforgiven violation: round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		if viol.Invariant == "readmission" {
			sawReadmission = true
		}
	}
	if !sawReadmission {
		t.Fatalf("expected a readmission violation with the 600s backoff, got %v", v.Violations)
	}
}

// TestUpgradeFailureRaceStormHandoff checks the upgrade/failure race:
// the drain target dies mid-drain, the controller aborts instead of
// marching on, and the storm brake owns the evacuation — the placeable
// fraction never goes through the capacity floor, which it would if a
// second machine were drained with the first already dead.
func TestUpgradeFailureRaceStormHandoff(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sc := corpusScenario(t, "upgrade_failure_race")
	v, err := RunScenario(testCtx(t), sc, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if !v.Passed {
		for _, viol := range v.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("upgrade-failure race failed invariants")
	}
	if v.UpgradeState != fleet.UpgradeAborted {
		t.Errorf("upgrade state %q; want %q", v.UpgradeState, fleet.UpgradeAborted)
	}
	if v.Upgraded != 0 {
		t.Errorf("aborted upgrade reported %d machines upgraded; want 0", v.Upgraded)
	}
	if v.StormRounds < 1 {
		t.Errorf("storm brake never engaged on the dead drain target: StormRounds=%d", v.StormRounds)
	}
	if v.MovesByReason[fleet.ReasonMachineLost] < 2 {
		t.Errorf("expected the dead machine's apps evacuated as machine-lost, byReason=%v", v.MovesByReason)
	}
}

// TestFilter exercises the -run selection helper: subsets select, order
// is preserved, unknown names error and list the corpus, and an
// all-unknown selection is rejected rather than silently running
// nothing.
func TestFilter(t *testing.T) {
	mk := func(names ...string) []*Scenario {
		out := make([]*Scenario, len(names))
		for i, n := range names {
			out[i] = &Scenario{Name: n}
		}
		return out
	}
	all := mk("a", "b", "c")

	got, err := Filter(all, "")
	if err != nil || len(got) != 3 {
		t.Fatalf("Filter(all, \"\") = %d scenarios, err %v; want all 3", len(got), err)
	}

	got, err = Filter(all, " c , a ")
	if err != nil {
		t.Fatalf("Filter subset: %v", err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("Filter subset = %v; want corpus-order [a c]", got)
	}

	if _, err = Filter(all, "a,zzz"); err == nil {
		t.Fatalf("Filter with unknown name should error")
	} else if s := err.Error(); !containsAll(s, "zzz", "a", "b", "c") {
		t.Fatalf("unknown-name error should list the available corpus, got %q", s)
	}

	if _, err = Filter(all, " , "); err == nil {
		t.Fatalf("Filter selecting nothing should error")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

// TestDriftScenarioConvergesThroughLeaderKill runs the telemetry-driven
// mis-declared-AI trace: the wolf's fitted model must converge to its true
// arithmetic intensity using only taskrt/memsim-streamed /v1/report samples,
// and the run must survive a mid-scenario leader kill on the HA member.
func TestDriftScenarioConvergesThroughLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sc := corpusScenario(t, "misdeclared_drift")
	v, err := RunScenario(testCtx(t), sc, EngineConfig{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if !v.Passed {
		for _, viol := range v.Violations {
			t.Errorf("round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
		t.Fatalf("drift scenario failed invariants")
	}
	if v.LeaderKills < 1 {
		t.Fatalf("scenario should have killed at least one leader, got %d", v.LeaderKills)
	}
	fitted, ok := v.DriftConfirmed["wolf"]
	if !ok {
		t.Fatalf("wolf drift never confirmed; DriftConfirmed=%v", v.DriftConfirmed)
	}
	// Declared AI 0.5, true AI 10: the fitted model must land near the
	// truth, not the declaration.
	if fitted < 5 || fitted > 20 {
		t.Fatalf("wolf fitted AI %.2f not near true AI 10", fitted)
	}
	// Post-correction the fleet should be near the compute-bound optimum:
	// wolf alone on a-ha ~= 320 GFLOPS, three mem apps on b-plain ~= 64.
	if v.FinalAggregateGFLOPS < 300 {
		t.Fatalf("final aggregate %.1f GFLOPS; want >= 300 after drift correction", v.FinalAggregateGFLOPS)
	}
}
