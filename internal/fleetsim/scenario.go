// Package fleetsim is the trace-driven fleet stress harness: a
// deterministic, seeded scenario engine that drives the real fleet
// placement stack (Inventory/Placer/Rebalancer over live coopd member
// instances, in-process) through trace-defined arrival processes —
// diurnal waves, flash crowds, autoscale churn across heterogeneous
// machine generations, mis-declared-AI drift — and checks stability
// invariants after every rebalance round:
//
//   - exactly-once: no app is placed on two machines at once (stale
//     duplicates pending cleanup on a revived member are exempt);
//   - bounded churn: a round's executed moves never exceed the global
//     move budget, across the urgent, drift, and imbalance passes
//     combined;
//   - no oscillation: an app moved A→B by the drift/imbalance passes
//     does not bounce back B→A within the configured window;
//   - convergence: once the trace stops perturbing the fleet, plans
//     drain to empty within K rounds and stay empty.
//
// Scenarios are JSON documents (a checked-in corpus lives in
// scenarios/); `cmd/fleetsim` and `make fleet-sim` run the corpus and
// emit a machine-readable per-scenario verdict artifact. Telemetry is
// honest: when a scenario enables it, each member's registered apps are
// re-simulated every round on the member's own topology with
// internal/taskrt + internal/memsim (via internal/osched), and the
// observed GFLOPS/GBps rates stream to the member coopd's /v1/report —
// the adaptive recalibration loop runs end-to-end with no hand-fed
// samples.
package fleetsim

import (
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fleet"
	"repro/internal/roofline"
)

//go:embed scenarios/*.json
var corpusFS embed.FS

// MachineSpec declares one fleet member machine in a scenario.
type MachineSpec struct {
	// ID names the member; members are polled and scored in ID order,
	// so IDs fix the deterministic tie-break order.
	ID string `json:"id"`
	// Model selects the NUMA topology generation: "paper" (default),
	// "paper-numa-bad", "skylake", "knl-flat", "knl-snc4".
	Model string `json:"model,omitempty"`
	// Domain is the member's failure domain (rack/zone); machines
	// sharing a domain fail together in correlated-failure traces.
	// Empty: the machine is its own domain.
	Domain string `json:"domain,omitempty"`
	// HA runs the member as a two-replica coopd pair (leader +
	// follower) instead of a single daemon; required for kill_leader.
	HA bool `json:"ha,omitempty"`
	// Recalibrate enables the member's adaptive loop (fast test tuning:
	// single-sample windows, two confirm windows) so streamed telemetry
	// can confirm drift.
	Recalibrate bool `json:"recalibrate,omitempty"`
}

// AppDef declares an application a scenario registers.
type AppDef struct {
	Name string `json:"name"`
	// AI is the declared arithmetic intensity the app registers with.
	AI float64 `json:"ai"`
	// TrueAI, when positive and different from AI, is the intensity the
	// telemetry simulation actually runs — a mis-declared app. Zero
	// means honest (TrueAI = AI).
	TrueAI     float64 `json:"true_ai,omitempty"`
	MaxThreads int     `json:"max_threads,omitempty"`
	Placement  string  `json:"placement,omitempty"`
	HomeNode   int     `json:"home_node,omitempty"`
	// Priority is the app's scheduling class ("system", "latency", or
	// "batch", the default). Front-door registrations carry it through
	// the Placer; machine-pinned registrations teach it to the inventory
	// via RecordPriority — either way the fleet knows the class, the
	// member coopd never does.
	Priority string `json:"priority,omitempty"`
}

// Arrival is one trace-defined arrival process expanded into per-round
// register/deregister deltas at load time.
type Arrival struct {
	// Process is "diurnal" (sinusoidal population between Base and Peak
	// with the given Period, adjusting until round Until, holding
	// after) or "flash" (Count apps appear at Round and depart at
	// Round+Hold; Hold 0 means they stay).
	Process string `json:"process"`
	// Prefix names the process's apps: prefix-0, prefix-1, ...
	Prefix string `json:"prefix"`
	// AI / TrueAI / MaxThreads / Priority shape every app of the process.
	AI         float64 `json:"ai"`
	TrueAI     float64 `json:"true_ai,omitempty"`
	MaxThreads int     `json:"max_threads,omitempty"`
	Priority   string  `json:"priority,omitempty"`

	// Diurnal knobs.
	Base   int `json:"base,omitempty"`
	Peak   int `json:"peak,omitempty"`
	Period int `json:"period,omitempty"`
	Until  int `json:"until,omitempty"`

	// Flash knobs.
	Round int `json:"round,omitempty"`
	Count int `json:"count,omitempty"`
	Hold  int `json:"hold,omitempty"`
}

// Event is one scripted perturbation.
type Event struct {
	Round int `json:"round"`
	// Action: "register", "deregister", "kill", "revive", "join",
	// "drain", "undrain", "kill_leader", "set_true_ai".
	Action string `json:"action"`
	// Machine targets kill/revive/drain/undrain/kill_leader; for
	// register it optionally pins the registration to one member
	// (bypassing the Placer — an app arriving behind the fleet's back).
	Machine string `json:"machine,omitempty"`
	// Join describes the machine a "join" event adds mid-run.
	Join *MachineSpec `json:"join,omitempty"`
	// App is the "register" payload.
	App *AppDef `json:"app,omitempty"`
	// AppName targets deregister/set_true_ai.
	AppName string `json:"app_name,omitempty"`
	// TrueAI is the new measured intensity for set_true_ai (an app
	// changing phase mid-run).
	TrueAI float64 `json:"true_ai,omitempty"`
	// HealthFloor is the "upgrade" event's abort floor (0: the
	// controller default, 0.5).
	HealthFloor float64 `json:"health_floor,omitempty"`
	// Parallel turns the "upgrade" event into the naive all-at-once
	// variant — every machine drained simultaneously, no controller —
	// the regression knob that demonstrates the capacity-floor
	// invariant failing without rolling orchestration.
	Parallel bool `json:"parallel,omitempty"`
}

// Scenario is one runnable trace with its invariant tolerances.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed fixes every random source (DES engines, derived per-round
	// seeds); the same scenario + seed is bit-deterministic in its
	// placement decisions.
	Seed int64 `json:"seed"`
	// Rounds is how many rebalance rounds the engine drives.
	Rounds int `json:"rounds"`

	// Rebalancer knobs (zero: the Rebalancer's own defaults).
	MaxMovesPerRound int     `json:"max_moves_per_round,omitempty"`
	Threshold        float64 `json:"threshold,omitempty"`
	CooldownRounds   int     `json:"cooldown_rounds,omitempty"`
	// DisableAntiThrash turns the cooldown/damping guard off
	// (CooldownRounds = -1): the regression knob that demonstrates the
	// oscillation invariant failing on a pre-hardening rebalancer.
	DisableAntiThrash bool `json:"disable_anti_thrash,omitempty"`

	// Robustness knobs (zero: the fleet layer's own defaults).
	// DomainSpread enables the failure-domain anti-affinity tie-break;
	// StormFraction/StormBudget/AdmissionCap tune the rebalancer's
	// mass-failure storm brake; DisableStormBrake is the regression knob
	// that runs a correlated failure without triage.
	DomainSpread      bool    `json:"domain_spread,omitempty"`
	StormFraction     float64 `json:"storm_fraction,omitempty"`
	StormBudget       int     `json:"storm_budget,omitempty"`
	AdmissionCap      int     `json:"admission_cap,omitempty"`
	DisableStormBrake bool    `json:"disable_storm_brake,omitempty"`
	// FlapCount/FlapWindowSeconds/QuarantineBackoffSeconds tune the
	// inventory's flap detector; DisableQuarantine (FlapCount = -1) is
	// the regression knob that lets a flapping machine whipsaw the
	// rebalancer. All flap timing runs on the engine's simulated clock
	// (one second per round), so backoffs expire deterministically at a
	// round boundary, never on wall-clock luck.
	FlapCount                int  `json:"flap_count,omitempty"`
	FlapWindowSeconds        int  `json:"flap_window_seconds,omitempty"`
	QuarantineBackoffSeconds int  `json:"quarantine_backoff_seconds,omitempty"`
	DisableQuarantine        bool `json:"disable_quarantine,omitempty"`

	// Priority knobs. Objective selects the Scorer's placement objective
	// ("", "total-gflops", "weighted-priority", "max-min");
	// DisablePreemption turns the priority-inversion repair pass and
	// gang-admission eviction off — the regression knob that
	// demonstrates the no-priority-inversion invariant failing on a
	// preemption-free fleet.
	Objective         string `json:"objective,omitempty"`
	DisablePreemption bool   `json:"disable_preemption,omitempty"`

	// Invariant tolerances. OscillationWindow defaults to the effective
	// cooldown (a cooled-down app structurally cannot return inside the
	// window); ConvergeWithin defaults to 5 rounds after the last
	// perturbation.
	OscillationWindow int `json:"oscillation_window,omitempty"`
	ConvergeWithin    int `json:"converge_within,omitempty"`
	// SurvivorAdmissionCap, when positive, arms the survivor-admission
	// invariant: no member may admit more than this many urgent
	// (machine-lost/quarantine) evacuations in one round. When
	// Scenario.StormBudget is also positive, a round's urgent
	// evacuations exceeding it is a bounded-churn violation.
	SurvivorAdmissionCap int `json:"survivor_admission_cap,omitempty"`
	// MaxMachineLostPerMember, when positive, arms the flap-churn
	// invariant: one member sourcing more than this many urgent
	// evacuations across the whole run is flapping unquarantined.
	MaxMachineLostPerMember int `json:"max_machine_lost_per_member,omitempty"`
	// MinPlaceableFraction, when positive, arms the capacity-floor
	// invariant: after every round at least this fraction of members
	// must be placeable (healthy and not draining).
	MinPlaceableFraction float64 `json:"min_placeable_fraction,omitempty"`
	// InversionToleranceRounds, when positive, arms the
	// no-priority-inversion invariant: a healthy member hosting a
	// latency- or system-class app with more apps than its floor
	// capacity while lower-class apps hold slots there is an inversion;
	// one that persists for more than this many consecutive rounds is a
	// violation. Transient inversions (an evacuation just landed, the
	// preemption pass has not run yet) inside the tolerance are fine.
	InversionToleranceRounds int `json:"inversion_tolerance_rounds,omitempty"`
	// FinalMinApps, when set, is checked after the last round's poll:
	// each named member must host at least that many (non-stale) apps.
	// The quarantine_readmission trace uses it to prove a forgiven
	// member actually wins placements back instead of idling forever.
	FinalMinApps map[string]int `json:"final_min_apps,omitempty"`

	// FailAfter is the inventory's consecutive-failed-polls death
	// threshold (default 2: a killed machine is declared dead on the
	// second round after the kill).
	FailAfter int `json:"fail_after,omitempty"`

	// Telemetry streams per-app taskrt/memsim rates to every member
	// after each round; SimSeconds is the simulated span per round
	// (default 0.2).
	Telemetry  bool    `json:"telemetry,omitempty"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`

	Machines []MachineSpec `json:"machines"`
	Arrivals []Arrival     `json:"arrivals,omitempty"`
	Events   []Event       `json:"events,omitempty"`
}

// Validate rejects scenarios the engine cannot run.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("fleetsim: scenario needs a name")
	}
	if sc.Rounds <= 0 {
		return fmt.Errorf("fleetsim: scenario %s: rounds must be positive", sc.Name)
	}
	if len(sc.Machines) == 0 {
		return fmt.Errorf("fleetsim: scenario %s: needs at least one machine", sc.Name)
	}
	if _, err := roofline.ObjectiveSpecByName(sc.Objective); err != nil {
		return fmt.Errorf("fleetsim: scenario %s: %w", sc.Name, err)
	}
	ids := map[string]bool{}
	ha := map[string]bool{}
	for _, m := range sc.Machines {
		if m.ID == "" {
			return fmt.Errorf("fleetsim: scenario %s: machine without id", sc.Name)
		}
		if ids[m.ID] {
			return fmt.Errorf("fleetsim: scenario %s: duplicate machine %s", sc.Name, m.ID)
		}
		ids[m.ID] = true
		ha[m.ID] = m.HA
		if _, err := topologyFor(m.Model); err != nil {
			return fmt.Errorf("fleetsim: scenario %s: %w", sc.Name, err)
		}
	}
	for _, a := range sc.Arrivals {
		switch a.Process {
		case "diurnal":
			if a.Period <= 0 || a.Peak < a.Base || a.Base < 0 {
				return fmt.Errorf("fleetsim: scenario %s: diurnal %s needs period > 0 and peak >= base >= 0", sc.Name, a.Prefix)
			}
		case "flash":
			if a.Count <= 0 {
				return fmt.Errorf("fleetsim: scenario %s: flash %s needs a positive count", sc.Name, a.Prefix)
			}
		default:
			return fmt.Errorf("fleetsim: scenario %s: unknown arrival process %q", sc.Name, a.Process)
		}
		if a.Prefix == "" || a.AI <= 0 {
			return fmt.Errorf("fleetsim: scenario %s: arrival needs a prefix and positive ai", sc.Name)
		}
		if err := fleet.CheckPriority(a.Priority); err != nil {
			return fmt.Errorf("fleetsim: scenario %s: arrival %s: %w", sc.Name, a.Prefix, err)
		}
	}
	for _, e := range sc.Events {
		if e.Round < 0 || e.Round >= sc.Rounds {
			return fmt.Errorf("fleetsim: scenario %s: event %q at round %d outside [0, %d)", sc.Name, e.Action, e.Round, sc.Rounds)
		}
		switch e.Action {
		case "register":
			if e.App == nil || e.App.Name == "" || e.App.AI <= 0 {
				return fmt.Errorf("fleetsim: scenario %s: register event needs an app with a name and positive ai", sc.Name)
			}
			if err := fleet.CheckPriority(e.App.Priority); err != nil {
				return fmt.Errorf("fleetsim: scenario %s: register %s: %w", sc.Name, e.App.Name, err)
			}
		case "deregister":
			if e.AppName == "" {
				return fmt.Errorf("fleetsim: scenario %s: deregister event needs app_name", sc.Name)
			}
		case "kill", "revive", "drain", "undrain":
			if !ids[e.Machine] {
				return fmt.Errorf("fleetsim: scenario %s: %s targets unknown machine %q", sc.Name, e.Action, e.Machine)
			}
		case "kill_leader":
			if !ids[e.Machine] {
				return fmt.Errorf("fleetsim: scenario %s: kill_leader targets unknown machine %q", sc.Name, e.Machine)
			}
			if !ha[e.Machine] {
				return fmt.Errorf("fleetsim: scenario %s: kill_leader targets non-HA machine %q", sc.Name, e.Machine)
			}
		case "join":
			if e.Join == nil || e.Join.ID == "" {
				return fmt.Errorf("fleetsim: scenario %s: join event needs a machine spec", sc.Name)
			}
			if ids[e.Join.ID] {
				return fmt.Errorf("fleetsim: scenario %s: join duplicates machine %s", sc.Name, e.Join.ID)
			}
			ids[e.Join.ID] = true
			ha[e.Join.ID] = e.Join.HA
			if _, err := topologyFor(e.Join.Model); err != nil {
				return fmt.Errorf("fleetsim: scenario %s: %w", sc.Name, err)
			}
		case "set_true_ai":
			if e.AppName == "" || e.TrueAI <= 0 {
				return fmt.Errorf("fleetsim: scenario %s: set_true_ai needs app_name and positive true_ai", sc.Name)
			}
		case "upgrade":
			if e.HealthFloor < 0 || e.HealthFloor > 1 {
				return fmt.Errorf("fleetsim: scenario %s: upgrade health_floor %g outside [0, 1]", sc.Name, e.HealthFloor)
			}
		default:
			return fmt.Errorf("fleetsim: scenario %s: unknown event action %q", sc.Name, e.Action)
		}
	}
	// ids now includes mid-run joins, so a FinalMinApps entry may name a
	// machine that does not exist until its join event fires.
	for id := range sc.FinalMinApps {
		if !ids[id] {
			return fmt.Errorf("fleetsim: scenario %s: final_min_apps names unknown machine %q", sc.Name, id)
		}
	}
	return nil
}

// effectiveCooldown mirrors the Rebalancer's CooldownRounds defaulting.
func (sc *Scenario) effectiveCooldown() int {
	cd := sc.CooldownRounds
	if sc.DisableAntiThrash {
		cd = -1
	}
	switch {
	case cd > 0:
		return cd
	case cd < 0:
		return 0
	}
	return 2
}

func (sc *Scenario) oscillationWindow() int {
	if sc.OscillationWindow > 0 {
		return sc.OscillationWindow
	}
	if cd := sc.effectiveCooldown(); cd > 0 {
		return cd
	}
	return 2
}

func (sc *Scenario) convergeWithin() int {
	if sc.ConvergeWithin > 0 {
		return sc.ConvergeWithin
	}
	return 5
}

func (sc *Scenario) failAfter() int {
	if sc.FailAfter > 0 {
		return sc.FailAfter
	}
	return 2
}

func (sc *Scenario) simSeconds() float64 {
	if sc.SimSeconds > 0 {
		return sc.SimSeconds
	}
	return 0.2
}

// flapCount mirrors the inventory's FlapCount contract: -1 disables.
func (sc *Scenario) flapCount() int {
	if sc.DisableQuarantine {
		return -1
	}
	return sc.FlapCount
}

// populationAt is the diurnal process's target population for a round:
// base + (peak-base) · (1 − cos 2πr/period)/2, frozen past Until so the
// fleet has a stable tail to converge in.
func (a *Arrival) populationAt(round int) int {
	switch a.Process {
	case "diurnal":
		r := round
		if a.Until > 0 && r > a.Until {
			r = a.Until
		}
		phase := 2 * math.Pi * float64(r) / float64(a.Period)
		return a.Base + int(math.Round(float64(a.Peak-a.Base)*(1-math.Cos(phase))/2))
	case "flash":
		if round < a.Round {
			return 0
		}
		if a.Hold > 0 && round >= a.Round+a.Hold {
			return 0
		}
		return a.Count
	}
	return 0
}

// app builds the i-th app of the process.
func (a *Arrival) app(i int) AppDef {
	return AppDef{
		Name:       fmt.Sprintf("%s-%d", a.Prefix, i),
		AI:         a.AI,
		TrueAI:     a.TrueAI,
		MaxThreads: a.MaxThreads,
		Priority:   a.Priority,
	}
}

// ParseScenario decodes and validates one scenario document.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("fleetsim: decoding scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Corpus returns the checked-in scenario corpus, sorted by name.
func Corpus() ([]*Scenario, error) {
	return loadFS(corpusFS, "scenarios")
}

// LoadDir loads every *.json scenario in a directory.
func LoadDir(dir string) ([]*Scenario, error) {
	return loadFS(os.DirFS(dir), ".")
}

// Filter selects scenarios by a comma-separated name list. An empty
// list selects everything; names that match nothing are an error that
// spells out the available scenarios, so a typo in a CI invocation
// fails loudly instead of silently running an empty (or wrong) subset.
func Filter(scenarios []*Scenario, run string) ([]*Scenario, error) {
	if strings.TrimSpace(run) == "" {
		return scenarios, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	var kept []*Scenario
	for _, sc := range scenarios {
		if want[sc.Name] {
			kept = append(kept, sc)
			delete(want, sc.Name)
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for name := range want {
			missing = append(missing, name)
		}
		sort.Strings(missing)
		available := make([]string, 0, len(scenarios))
		for _, sc := range scenarios {
			available = append(available, sc.Name)
		}
		return nil, fmt.Errorf("fleetsim: no scenario named %s; available: %s",
			strings.Join(missing, ", "), strings.Join(available, ", "))
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("fleetsim: -run selected no scenarios")
	}
	return kept, nil
}

func loadFS(fsys fs.FS, root string) ([]*Scenario, error) {
	entries, err := fs.Glob(fsys, filepath.ToSlash(filepath.Join(root, "*.json")))
	if err != nil {
		return nil, err
	}
	var out []*Scenario
	for _, name := range entries {
		data, err := fs.ReadFile(fsys, name)
		if err != nil {
			return nil, err
		}
		sc, err := ParseScenario(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil, fmt.Errorf("fleetsim: no scenarios found")
	}
	return out, nil
}
