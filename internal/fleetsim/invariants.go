package fleetsim

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
)

// Violation is one invariant failure, pinned to the round it surfaced.
type Violation struct {
	Round     int    `json:"round"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Verdict is the machine-readable outcome of one scenario run — the
// artifact `cmd/fleetsim` writes and CI uploads.
type Verdict struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Rounds   int    `json:"rounds"`
	Passed   bool   `json:"passed"`
	// Violations is empty when Passed.
	Violations []Violation `json:"violations,omitempty"`

	// Churn accounting across the whole run.
	TotalMoves    int            `json:"total_moves"`
	MovesByReason map[string]int `json:"moves_by_reason,omitempty"`
	Deferred      int            `json:"deferred"`
	MaxRoundMoves int            `json:"max_round_moves"`

	// LastPerturbRound is the last round the trace (or a drift
	// confirmation) changed the fleet's inputs; LastActiveRound is the
	// last round the rebalancer still planned work. Convergence demands
	// LastActiveRound <= LastPerturbRound + ConvergeWithin.
	LastPerturbRound int `json:"last_perturb_round"`
	LastActiveRound  int `json:"last_active_round"`

	// DriftConfirmed lists apps whose streamed telemetry confirmed a
	// mis-declared model, with the fitted AI each converged to.
	DriftConfirmed map[string]float64 `json:"drift_confirmed,omitempty"`

	// FinalAggregateGFLOPS sums healthy members' solved aggregates
	// after the last round.
	FinalAggregateGFLOPS float64 `json:"final_aggregate_gflops"`

	// ElapsedSeconds and RoundsPerSec record the run's wall-clock
	// rebalancer throughput (poll + plan + execute + invariant checks per
	// round). The scale_out scenario doubles as the fleet's
	// rebalancer-throughput benchmark through these fields. They are the
	// one legitimately nondeterministic part of a verdict.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`

	// LeaderKills counts kill_leader events survived.
	LeaderKills int `json:"leader_kills,omitempty"`

	// StormRounds counts rounds the rebalancer spent in degraded-mode
	// triage (storm brake engaged).
	StormRounds int `json:"storm_rounds,omitempty"`

	// InversionRounds counts rounds in which at least one member hosted
	// a priority inversion (a higher-class app starved past the floor
	// while lower classes held slots). A trace that creates an inversion
	// should show a positive count even when preemption repairs it well
	// inside the tolerance — proof the invariant was exercised, not
	// vacuous.
	InversionRounds int `json:"inversion_rounds,omitempty"`

	// UpgradeState and Upgraded report the rolling-upgrade controller's
	// final state and how many machines completed their drain cycle.
	UpgradeState string `json:"upgrade_state,omitempty"`
	Upgraded     int    `json:"upgraded,omitempty"`
}

// moveRecord is one executed move in the oscillation ledger.
type moveRecord struct {
	round  int
	from   string
	to     string
	reason string
}

// checker accumulates per-round state for the stability invariants.
type checker struct {
	sc         *Scenario
	violations []Violation
	history    map[string][]moveRecord // app name -> executed moves
	lostFrom   map[string]int          // member ID -> urgent evacuations charged to it
	// inversionSince tracks, per member, the first round of its current
	// priority-inversion streak (absent: not inverted); inversionFlagged
	// marks streaks already reported, so one sustained inversion is one
	// violation, not one per round past the tolerance.
	inversionSince   map[string]int
	inversionFlagged map[string]bool
}

func newChecker(sc *Scenario) *checker {
	return &checker{
		sc: sc, history: map[string][]moveRecord{}, lostFrom: map[string]int{},
		inversionSince: map[string]int{}, inversionFlagged: map[string]bool{},
	}
}

func (c *checker) violate(round int, invariant, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Round:     round,
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// checkBudget enforces the bounded-churn invariant on one round's plan:
// the moves the plan carries — urgent, drift, and imbalance combined —
// never exceed the round's global budget.
func (c *checker) checkBudget(round int, plan *fleet.Plan) {
	if plan.Budget <= 0 {
		c.violate(round, "bounded-churn", "plan carries no move budget (budget=%d)", plan.Budget)
		return
	}
	if len(plan.Moves) > plan.Budget {
		c.violate(round, "bounded-churn", "%d moves planned against a budget of %d", len(plan.Moves), plan.Budget)
	}
	if plan.BudgetSpent != len(plan.Moves) {
		c.violate(round, "bounded-churn", "plan reports %d budget spent for %d moves", plan.BudgetSpent, len(plan.Moves))
	}
}

// checkExactlyOnce enforces placement uniqueness over the inventory
// snapshot: every app name appears on at most one member. Registrations
// listed in a member's Stale set are re-home leftovers awaiting cleanup
// on a revived machine — known duplicates, exempt until the rebalancer
// deregisters them.
func (c *checker) checkExactlyOnce(round int, members []fleet.Member) {
	hosts := map[string][]string{}
	for _, m := range members {
		stale := map[string]bool{}
		for _, id := range m.Stale {
			stale[id] = true
		}
		for _, a := range m.Apps {
			if stale[a.ID] {
				continue
			}
			hosts[a.Name] = append(hosts[a.Name], m.ID)
		}
	}
	names := make([]string, 0, len(hosts))
	for name := range hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if on := hosts[name]; len(on) > 1 {
			c.violate(round, "exactly-once", "app %s placed on %d machines: %v", name, len(on), on)
		}
	}
}

// recordMoves feeds the round's executed moves into the oscillation
// ledger and checks the no-bounce invariant: an app sent A→B by the
// drift or imbalance pass must not return B→A within the window. Pairs
// where either leg is urgent (machine lost, drain) are exempt — losing
// a machine and later re-packing onto its replacement is recovery, not
// thrash.
func (c *checker) recordMoves(round int, plan *fleet.Plan) {
	window := c.sc.oscillationWindow()
	for _, mv := range plan.Moves {
		rec := moveRecord{round: round, from: mv.From, to: mv.To, reason: mv.Reason}
		if rec.reason == fleet.ReasonDrift || rec.reason == fleet.ReasonRebalance {
			for _, prev := range c.history[mv.App.Name] {
				if prev.reason != fleet.ReasonDrift && prev.reason != fleet.ReasonRebalance {
					continue
				}
				if prev.from == rec.to && prev.to == rec.from && round-prev.round <= window {
					c.violate(round, "no-oscillation",
						"app %s bounced %s->%s (round %d) then %s->%s (round %d) within window %d",
						mv.App.Name, prev.from, prev.to, prev.round, rec.from, rec.to, round, window)
				}
			}
		}
		c.history[mv.App.Name] = append(c.history[mv.App.Name], rec)
		// Flap-churn: a machine that keeps dying and reviving must stop
		// generating evacuations once the quarantine detector has had a
		// fair look at it. Urgent legs are exempt from the oscillation
		// pairing above, so without this cap a flapping member could churn
		// the fleet forever while every individual leg looks legitimate.
		if limit := c.sc.MaxMachineLostPerMember; limit > 0 &&
			(rec.reason == fleet.ReasonMachineLost || rec.reason == fleet.ReasonQuarantine) {
			c.lostFrom[mv.From]++
			if got := c.lostFrom[mv.From]; got > limit {
				c.violate(round, "flap-churn",
					"member %s generated %d urgent evacuations (max %d) — flapping machine never quarantined?",
					mv.From, got, limit)
			}
		}
	}
}

// checkStorm enforces the degraded-mode triage bounds on one round's
// plan: under a correlated-failure storm, urgent evacuations stay under
// the storm budget, and no single survivor admits more than the
// per-round admission cap. Both checks apply whether or not the brake
// is engaged — that asymmetry is the point: a scenario that disables
// the brake must visibly violate these to prove the brake matters.
func (c *checker) checkStorm(round int, plan *fleet.Plan) {
	evac, inbound := 0, map[string]int{}
	for _, mv := range plan.Moves {
		if mv.Reason != fleet.ReasonMachineLost && mv.Reason != fleet.ReasonQuarantine {
			continue
		}
		evac++
		inbound[mv.To]++
	}
	if b := c.sc.StormBudget; b > 0 && evac > b {
		c.violate(round, "bounded-churn",
			"%d urgent evacuations in one round against a storm budget of %d", evac, b)
	}
	if capN := c.sc.SurvivorAdmissionCap; capN > 0 {
		tos := make([]string, 0, len(inbound))
		for to := range inbound {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if got := inbound[to]; got > capN {
				c.violate(round, "survivor-admission",
					"survivor %s admitted %d evacuations in one round (cap %d)", to, got, capN)
			}
		}
	}
}

// checkCapacityFloor enforces the rolling-upgrade safety bound: the
// fraction of members that are placement targets (healthy and not
// draining) never dips below MinPlaceableFraction. A naive all-at-once
// upgrade drains the whole fleet and fails this immediately.
func (c *checker) checkCapacityFloor(round int, members []fleet.Member) {
	f := c.sc.MinPlaceableFraction
	if f <= 0 || len(members) == 0 {
		return
	}
	placeable := 0
	for _, m := range members {
		if m.Healthy() && !m.Draining {
			placeable++
		}
	}
	if float64(placeable) < f*float64(len(members)) {
		c.violate(round, "capacity-floor",
			"only %d/%d members placeable, below floor %.2f", placeable, len(members), f)
	}
}

// checkPriorityInversion enforces the no-priority-inversion invariant,
// armed by InversionToleranceRounds: a healthy, non-draining member
// whose (non-stale) demand exceeds its floor capacity while it hosts a
// latency- or system-class app alongside lower-class ones is inverted —
// the higher class is starved of a guaranteed core while batch work
// holds slots the preemption pass should reclaim. Transient inversions
// are expected (an urgent evacuation lands a latency app on a full
// machine; the repair pass runs on the next quiet round), so only a
// streak persisting past the tolerance is a violation. Returns whether
// any member is inverted this round, whatever the tolerance, so the
// verdict can count exercised rounds.
func (c *checker) checkPriorityInversion(round int, members []fleet.Member) bool {
	any := false
	for i := range members {
		m := &members[i]
		inverted := false
		if m.Healthy() && !m.Draining && m.Topology != nil {
			stale := map[string]bool{}
			for _, id := range m.Stale {
				stale[id] = true
			}
			apps, top, classes := 0, 0, map[int]bool{}
			for _, a := range m.Apps {
				if stale[a.ID] {
					continue
				}
				apps++
				rank := fleet.ClassRank(a.Priority)
				classes[rank] = true
				if rank > top {
					top = rank
				}
			}
			lower := false
			for rank := range classes {
				if rank < top {
					lower = true
				}
			}
			inverted = apps > fleet.FloorCapacity(m.Topology) && top > 0 && lower
		}
		if !inverted {
			delete(c.inversionSince, m.ID)
			delete(c.inversionFlagged, m.ID)
			continue
		}
		any = true
		since, ok := c.inversionSince[m.ID]
		if !ok {
			since = round
			c.inversionSince[m.ID] = round
		}
		tol := c.sc.InversionToleranceRounds
		if tol > 0 && round-since+1 > tol && !c.inversionFlagged[m.ID] {
			c.inversionFlagged[m.ID] = true
			c.violate(round, "priority-inversion",
				"member %s has hosted a starved higher-class app over its floor capacity for %d rounds (tolerance %d) — preemption never repaired it",
				m.ID, round-since+1, tol)
		}
	}
	return any
}

// checkReadmission runs after the last round's poll: every member named
// in FinalMinApps must host at least that many non-stale apps. This is
// the quarantine-forgiveness teeth — a member the flap detector benched
// and later re-admitted must actually win placements back under
// sustained load, not just flip a health bit.
func (c *checker) checkReadmission(members []fleet.Member) {
	if len(c.sc.FinalMinApps) == 0 {
		return
	}
	byID := map[string]*fleet.Member{}
	for i := range members {
		byID[members[i].ID] = &members[i]
	}
	ids := make([]string, 0, len(c.sc.FinalMinApps))
	for id := range c.sc.FinalMinApps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		min := c.sc.FinalMinApps[id]
		m := byID[id]
		if m == nil {
			c.violate(c.sc.Rounds-1, "readmission", "member %s missing from the final snapshot (want >= %d apps)", id, min)
			continue
		}
		stale := map[string]bool{}
		for _, sid := range m.Stale {
			stale[sid] = true
		}
		apps := 0
		for _, a := range m.Apps {
			if !stale[a.ID] {
				apps++
			}
		}
		if apps < min {
			c.violate(c.sc.Rounds-1, "readmission",
				"member %s finished with %d apps, want >= %d (quarantined=%v dead=%v) — never won placements back",
				id, apps, min, m.Quarantined, m.Dead)
		}
	}
}

// checkConvergence runs after the last round: once the trace stopped
// perturbing the fleet (lastPerturb), plans must drain to empty within
// ConvergeWithin rounds and stay empty (lastActive is the last round
// that planned moves, cleanups, or deferrals).
func (c *checker) checkConvergence(lastPerturb, lastActive int) {
	k := c.sc.convergeWithin()
	if lastActive > lastPerturb+k {
		c.violate(lastActive, "convergence",
			"rebalancer still active at round %d, %d rounds after the last perturbation (round %d, tolerance %d)",
			lastActive, lastActive-lastPerturb, lastPerturb, k)
	}
}
