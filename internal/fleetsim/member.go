package fleetsim

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/adapt"
	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/ctrlplane/persist"
	"repro/internal/ctrlplane/replica"
	"repro/internal/machine"
)

// topologyFor maps a scenario machine model name to a topology builder;
// each call returns a fresh Machine (members must not share one).
func topologyFor(model string) (func() *machine.Machine, error) {
	switch model {
	case "", "paper":
		return machine.PaperModel, nil
	case "paper-numa-bad":
		return machine.PaperModelNUMABad, nil
	case "skylake":
		return machine.SkylakeQuad, nil
	case "knl-flat":
		return machine.KNLFlat, nil
	case "knl-snc4":
		return machine.KNLSNC4, nil
	}
	return nil, fmt.Errorf("unknown machine model %q", model)
}

// fastAdapt is the adaptive-loop tuning every recalibrating member
// uses: single-sample windows and two confirm windows, so one telemetry
// report per rebalance round confirms drift within a few rounds.
func fastAdapt() adapt.Config {
	return adapt.Config{Window: 1, Alpha: 0.5, ConfirmWindows: 2}
}

// memberTTL keeps sim apps alive without heartbeats for any plausible
// scenario length.
const memberTTL = time.Hour

// replicaProc is one live coopd replica process (or the single process
// of a plain member).
type replicaProc struct {
	url   string
	dir   string // persist state dir ("" for plain members)
	srv   *ctrlplane.Server
	node  *replica.Node // nil for plain members
	hs    *http.Server
	alive bool
}

// kill crashes the process: listener closed, loops stopped, store
// abandoned without a clean close.
func (p *replicaProc) kill() {
	if !p.alive {
		return
	}
	p.alive = false
	p.hs.Close()
	if p.node != nil {
		p.node.Close()
	}
	p.srv.Close()
}

// simMember is one fleet machine under simulation: a single in-process
// coopd, or an HA pair of them.
type simMember struct {
	spec  MachineSpec
	procs []*replicaProc
	hosts []string // "host:port" per endpoint, for the partition fabric
}

func (m *simMember) endpoints() []string {
	out := make([]string, len(m.procs))
	for i, p := range m.procs {
		out[i] = p.url
	}
	return out
}

// leader returns the live replica currently holding the lease (nil for
// plain members or when no live replica leads).
func (m *simMember) leader() *replicaProc {
	for _, p := range m.procs {
		if p.alive && p.node != nil && p.node.Role() == replica.RoleLeader {
			return p
		}
	}
	return nil
}

func (m *simMember) close() {
	for _, p := range m.procs {
		p.kill()
		if p.dir != "" {
			os.RemoveAll(p.dir)
		}
	}
}

// listenLocal binds an ephemeral loopback port.
func listenLocal() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// startPlainProc boots a standalone coopd on a fresh port.
func startPlainProc(spec MachineSpec) (*replicaProc, error) {
	topo, err := topologyFor(spec.Model)
	if err != nil {
		return nil, err
	}
	cfg := ctrlplane.ServerConfig{Machine: topo(), DefaultTTL: memberTTL}
	if spec.Recalibrate {
		cfg.Recalibrate = true
		cfg.Adapt = fastAdapt()
	}
	srv, err := ctrlplane.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := listenLocal()
	if err != nil {
		srv.Close()
		return nil, err
	}
	p := &replicaProc{
		url:   "http://" + ln.Addr().String(),
		srv:   srv,
		hs:    &http.Server{Handler: srv.Handler()},
		alive: true,
	}
	go p.hs.Serve(ln)
	srv.Start()
	return p, nil
}

// startReplicaProc boots one replica of an HA member on ln. peers are
// the other replicas' URLs.
func startReplicaProc(spec MachineSpec, ln net.Listener, peers []string, bootstrap bool, leaderHint string) (*replicaProc, error) {
	dir, err := os.MkdirTemp("", "fleetsim-"+spec.ID+"-*")
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*replicaProc, error) {
		os.RemoveAll(dir)
		return nil, e
	}
	store, err := persist.Open(dir, persist.Options{})
	if err != nil {
		return fail(err)
	}
	topo, err := topologyFor(spec.Model)
	if err != nil {
		return fail(err)
	}
	cfg := ctrlplane.ServerConfig{Machine: topo(), DefaultTTL: memberTTL, Store: store}
	if spec.Recalibrate {
		cfg.Recalibrate = true
		cfg.Adapt = fastAdapt()
	}
	srv, err := ctrlplane.NewServer(cfg)
	if err != nil {
		return fail(err)
	}
	self := "http://" + ln.Addr().String()
	node, err := replica.NewNode(replica.Config{
		Self:         self,
		Peers:        peers,
		Server:       srv,
		LeaseTTL:     500 * time.Millisecond,
		PullInterval: 25 * time.Millisecond,
		Bootstrap:    bootstrap,
		LeaderHint:   leaderHint,
	})
	if err != nil {
		srv.Close()
		return fail(err)
	}
	p := &replicaProc{
		url:   self,
		dir:   dir,
		srv:   srv,
		node:  node,
		hs:    &http.Server{Handler: node.Handler()},
		alive: true,
	}
	go p.hs.Serve(ln)
	srv.Start()
	node.Start()
	return p, nil
}

// startMember boots a scenario machine: one process, or a
// bootstrap-leader + joining-follower pair when spec.HA.
func startMember(spec MachineSpec) (*simMember, error) {
	m := &simMember{spec: spec}
	if !spec.HA {
		p, err := startPlainProc(spec)
		if err != nil {
			return nil, err
		}
		m.procs = []*replicaProc{p}
	} else {
		lnA, err := listenLocal()
		if err != nil {
			return nil, err
		}
		lnB, err := listenLocal()
		if err != nil {
			lnA.Close()
			return nil, err
		}
		urlA := "http://" + lnA.Addr().String()
		urlB := "http://" + lnB.Addr().String()
		leader, err := startReplicaProc(spec, lnA, []string{urlB}, true, "")
		if err != nil {
			lnB.Close()
			return nil, err
		}
		follower, err := startReplicaProc(spec, lnB, []string{urlA}, false, urlA)
		if err != nil {
			leader.kill()
			os.RemoveAll(leader.dir)
			return nil, err
		}
		m.procs = []*replicaProc{leader, follower}
	}
	for _, p := range m.procs {
		u, err := url.Parse(p.url)
		if err != nil {
			m.close()
			return nil, err
		}
		m.hosts = append(m.hosts, u.Host)
	}
	return m, nil
}

// waitReplicated blocks (bounded) until every live replica's registry
// generation has caught up with the leader's. kill_leader calls this
// before the kill: the drill tests whether *replicated* state survives
// promotion, which with an async pull loop requires the follower to
// have actually pulled — otherwise the scenario races the replication
// interval and the verdict depends on wall-clock timing, not logic.
func (m *simMember) waitReplicated(ctx context.Context, timeout time.Duration) error {
	if !m.spec.HA {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		lead := m.leader()
		if lead == nil {
			return fmt.Errorf("fleetsim: member %s: no leader to replicate from", m.spec.ID)
		}
		caught := true
		var leadGen uint64
		if st, err := client.New(lead.url, client.Config{MaxAttempts: 1}).ReplicaStatus(ctx); err == nil {
			leadGen = st.Generation
		} else {
			caught = false
		}
		for _, p := range m.procs {
			if !caught {
				break
			}
			if !p.alive || p == lead {
				continue
			}
			st, err := client.New(p.url, client.Config{MaxAttempts: 1}).ReplicaStatus(ctx)
			if err != nil || st.Generation < leadGen {
				caught = false
			}
		}
		if caught {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleetsim: member %s: followers did not catch up within %v", m.spec.ID, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitLeader blocks (bounded) until a live replica of the member holds
// the lease — used after kill_leader so the scenario's subsequent
// rounds see a settled control plane rather than racing the election.
func (m *simMember) waitLeader(timeout time.Duration) error {
	if m.spec.HA {
		deadline := time.Now().Add(timeout)
		for m.leader() == nil {
			if time.Now().After(deadline) {
				return fmt.Errorf("fleetsim: member %s: no leader within %v", m.spec.ID, timeout)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}
