package fleetsim

import (
	"context"
	"fmt"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/osched"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

// appRate is one app's observed throughput over a simulated span.
type appRate struct {
	id      string
	name    string
	gflops  float64
	gbps    float64
	threads int
}

// simulateMember re-executes one member's registered apps on its own
// topology for simSeconds of simulated time and returns the observed
// per-app rates. Each app runs a Continuous workload at its *true*
// arithmetic intensity (what the app actually does, not what it
// declared) with as many workers as the member's current allocation
// grants it — so the telemetry stream carries exactly the signal the
// adaptive loop is supposed to recover: GB moved per GFlop is fixed by
// the true AI, rates scale with the allocation. The simulation is
// stateless per round (fresh DES engine, deterministic seed) so moved
// apps simply show up on their new machine next round.
func simulateMember(m fleet.Member, alloc *ctrlplane.AllocationsResponse, trueAI func(name string) float64, seed int64, simSeconds float64) []appRate {
	if m.Topology == nil || len(alloc.Apps) == 0 {
		return nil
	}
	threadsOf := map[string]int{}
	for _, a := range alloc.Apps {
		threadsOf[a.ID] = a.Threads
	}

	eng := des.NewEngine(seed)
	os_ := osched.New(eng, osched.Config{
		Machine: m.Topology,
		// Frictionless scheduling: the telemetry signal under test is the
		// roofline behaviour (compute vs bandwidth), not context-switch
		// overhead.
		ContextSwitchCost: -1,
		MigrationPenalty:  -1,
		LoadBalancePeriod: -1,
	})

	type runApp struct {
		app fleet.PlacedApp
		rt  *taskrt.Runtime
		wl  *workload.Continuous
	}
	var runs []runApp
	for _, app := range m.Apps {
		workers := threadsOf[app.ID]
		if workers <= 0 {
			// The solver granted nothing this round (or the allocation is
			// stale); a real runtime still makes progress on at least one
			// thread, and a silent app would starve the adaptive loop.
			workers = 1
		}
		rt := taskrt.New(os_, taskrt.Config{Name: app.ID, Workers: workers})
		ai := trueAI(app.Name)
		if ai <= 0 {
			ai = app.AI
		}
		wl := &workload.Continuous{RT: rt, TaskGFlop: 0.05, AI: ai}
		runs = append(runs, runApp{app: app, rt: rt, wl: wl})
	}

	os_.Start()
	for _, r := range runs {
		r.wl.Start()
	}
	eng.RunUntil(des.Time(simSeconds))

	rates := make([]appRate, 0, len(runs))
	for _, r := range runs {
		proc := r.rt.Process()
		rates = append(rates, appRate{
			id:      r.app.ID,
			name:    r.app.Name,
			gflops:  proc.GFlopDone() / simSeconds,
			gbps:    proc.GBMoved() / simSeconds,
			threads: r.rt.Stats().Workers,
		})
	}
	return rates
}

// reportRates streams the rates to the member's coopd /v1/report,
// trying each endpoint in order: a follower of an HA pair answers
// writes with 421 not_leader, so the loop walks on until the leader
// (or, for plain members, the only endpoint) accepts.
func reportRates(ctx context.Context, clis []*client.Client, rates []appRate) error {
	var firstErr error
	for _, r := range rates {
		req := ctrlplane.ReportRequest{
			ID:      r.id,
			Samples: []ctrlplane.ReportSample{{GFLOPS: r.gflops, GBps: r.gbps, Threads: r.threads}},
		}
		reported := false
		var lastErr error
		for _, cli := range clis {
			if _, err := cli.Report(ctx, req); err != nil {
				lastErr = err
				continue
			}
			reported = true
			break
		}
		if !reported && firstErr == nil {
			firstErr = fmt.Errorf("fleetsim: reporting %s: %w", r.id, lastErr)
		}
	}
	return firstErr
}
