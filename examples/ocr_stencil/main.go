// OCR stencil: an iterative 1-D stencil written against the OCR-style
// API (EDTs, data blocks, events) — the kind of scientific code the
// paper's runtime (OCR-Vx) hosts. The domain is partitioned into
// NUMA-placed data blocks; every iteration runs one EDT per partition,
// each depending on the previous iteration's EDT of itself and its two
// neighbours (halo exchange). The example compares the NUMA-aware
// scheduler against a NUMA-oblivious FIFO.
//
//	go run ./examples/ocr_stencil
package main

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/ocr"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

const (
	partitions        = 64 // 16 per NUMA node
	iterations        = 30
	gflopPerPartition = 0.05
	ai                = 1.0 / 16 // memory-bound stencil sweep
)

func run(numaAware bool) (seconds float64, localFrac float64) {
	m := machine.SkylakeQuad()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{Machine: m})
	o.Start()

	cfg := ocr.Config{Name: "stencil", BindMode: taskrt.BindCore, StrictLocality: true}
	if !numaAware {
		// The oblivious baseline: random work stealing, tasks run
		// wherever a worker is free. (The OCR veneer replaces a
		// zero-value scheduler with NUMA-aware, so ask explicitly.)
		cfg.Scheduler = taskrt.WorkStealing
		cfg.StrictLocality = false
	}
	r := ocr.NewRuntime(o, cfg)

	// One data block per partition, round-robin across NUMA nodes —
	// a NUMA-perfect decomposition.
	blocks := make([]*ocr.DataBlock, partitions)
	for p := range blocks {
		blocks[p] = r.CreateDataBlock(fmt.Sprintf("part%d", p),
			1.0, machine.NodeID(p%m.NumNodes()))
	}

	tmpl := &ocr.Template{Name: "sweep", GFlop: gflopPerPartition, AI: ai}

	// prev[p] is the output event of partition p's previous iteration.
	prev := make([]*ocr.Event, partitions)
	var edts []*ocr.EDT
	for it := 0; it < iterations; it++ {
		next := make([]*ocr.Event, partitions)
		for p := 0; p < partitions; p++ {
			deps := 1 // own block
			if it > 0 {
				deps = 4 // block + self + two neighbours
			}
			e := r.CreateEDT(tmpl, deps)
			e.AddDependence(blocks[p], 0)
			if it > 0 {
				left := (p - 1 + partitions) % partitions
				right := (p + 1) % partitions
				e.AddDependence(prev[p], 1)
				e.AddDependence(prev[left], 2)
				e.AddDependence(prev[right], 3)
			}
			next[p] = e.OutputEvent()
			edts = append(edts, e)
		}
		prev = next
	}

	var doneAt des.Time
	pending := partitions
	for p := 0; p < partitions; p++ {
		prev[p].OnSatisfy(func() {
			pending--
			if pending == 0 {
				doneAt = eng.Now()
				eng.Halt()
			}
		})
	}
	eng.RunUntil(600)

	local := 0
	for i, e := range edts {
		if core, ok := e.ExecutedOn(); ok {
			if m.NodeOfCore(core) == blocks[i%partitions].Node() {
				local++
			}
		}
	}
	return float64(doneAt), float64(local) / float64(len(edts))
}

func main() {
	numaSec, numaLocal := run(true)
	fifoSec, fifoLocal := run(false)

	t := metrics.NewTable("OCR 1-D stencil, 64 partitions x 30 iterations on the Skylake machine",
		"scheduler", "runtime (s)", "local executions")
	t.AddRow("NUMA-aware (OCR-Vx style)", numaSec, fmt.Sprintf("%.0f%%", numaLocal*100))
	t.AddRow("NUMA-oblivious (work stealing)", fifoSec, fmt.Sprintf("%.0f%%", fifoLocal*100))
	fmt.Println(t)
	fmt.Printf("speedup from NUMA-aware scheduling: %.2fx\n", fifoSec/numaSec)
	fmt.Println()
	fmt.Println("Each partition's data block lives on one NUMA node; the NUMA-aware")
	fmt.Println("scheduler runs the sweep EDTs next to their data, so nearly all memory")
	fmt.Println("traffic stays local — the paper's [11] observation that NUMA-aware OCR")
	fmt.Println("codes clearly outperform NUMA-oblivious ones.")
}
