// Allocation explorer: sweeps every uniform per-node thread allocation
// for the paper's application mix and prints the performance landscape,
// showing why NUMA-aware allocation matters (Table I's 254 GFLOPS vs
// Table II's 140 on the same machine).
//
//	go run ./examples/allocation_explorer
package main

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/roofline"
)

func main() {
	m := machine.PaperModel()
	apps := []roofline.App{
		{Name: "mem1", AI: 0.5},
		{Name: "mem2", AI: 0.5},
		{Name: "mem3", AI: 0.5},
		{Name: "comp", AI: 10},
	}

	type entry struct {
		counts []int
		total  float64
	}
	var entries []entry
	err := roofline.EnumeratePerNodeCounts(m, len(apps), func(counts []int, _ roofline.Allocation, r *roofline.Result) bool {
		// Only full allocations (all 8 cores per node used).
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum == m.Nodes[0].Cores {
			entries = append(entries, entry{counts: counts, total: r.TotalGFLOPS})
		}
		return true
	}, apps)
	if err != nil {
		panic(err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].total > entries[j].total })

	fmt.Printf("machine: %s\n", m)
	fmt.Printf("apps: 3x memory-bound (AI=0.5) + 1x compute-bound (AI=10)\n")
	fmt.Printf("full allocations enumerated: %d\n\n", len(entries))

	top := metrics.NewTable("top 10 allocations (threads per node: mem1,mem2,mem3,comp)", "rank", "counts", "GFLOPS")
	for i := 0; i < 10 && i < len(entries); i++ {
		top.AddRow(i+1, fmt.Sprint(entries[i].counts), entries[i].total)
	}
	fmt.Println(top)

	bottom := metrics.NewTable("bottom 5 allocations", "rank", "counts", "GFLOPS")
	for i := len(entries) - 5; i < len(entries); i++ {
		if i < 0 {
			continue
		}
		bottom.AddRow(i+1, fmt.Sprint(entries[i].counts), entries[i].total)
	}
	fmt.Println(bottom)

	// Locate the paper's three reference points in the landscape.
	find := func(counts []int) float64 {
		r := roofline.MustEvaluate(m, apps, roofline.MustPerNodeCounts(m, counts))
		return r.TotalGFLOPS
	}
	fmt.Printf("paper's uneven (1,1,1,5): %.0f GFLOPS\n", find([]int{1, 1, 1, 5}))
	fmt.Printf("paper's even   (2,2,2,2): %.0f GFLOPS\n", find([]int{2, 2, 2, 2}))
	npa := roofline.MustEvaluate(m, apps, roofline.MustNodePerApp(m, 4, nil))
	fmt.Printf("paper's node-per-app:     %.0f GFLOPS\n", npa.TotalGFLOPS)
	fmt.Printf("\nspread best/worst among full allocations: %.2fx\n", entries[0].total/entries[len(entries)-1].total)
}
