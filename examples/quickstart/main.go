// Quickstart: define a NUMA machine, describe two co-running
// applications, and compare thread allocations with the analytic
// roofline model and the full simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/roofline"
)

func main() {
	// A machine with 2 NUMA nodes, 8 cores each, 10 GFLOPS per core and
	// 40 GB/s of memory bandwidth per node.
	m := machine.Uniform("demo", 2, 8, 10, 40, 12)

	// Two applications: a memory-bound stream kernel and a compute-bound
	// solver.
	apps := []core.AppConfig{
		{Name: "stream", AI: 0.4},
		{Name: "solver", AI: 8},
	}

	// Compare three ways to split the 16 cores.
	allocations := map[string]roofline.Allocation{
		"even 4+4 per node": roofline.MustPerNodeCounts(m, []int{4, 4}),
		"stream-heavy 6+2":  roofline.MustPerNodeCounts(m, []int{6, 2}),
		"solver-heavy 2+6":  roofline.MustPerNodeCounts(m, []int{2, 6}),
		"one node per app":  roofline.MustNodePerApp(m, 2, nil),
	}

	t := metrics.NewTable("allocation comparison", "allocation", "model GFLOPS", "simulated GFLOPS")
	for name, al := range allocations {
		s := &core.Scenario{Machine: m, Apps: apps, Allocation: al}
		s.Sim.Duration = 0.5
		cmp, err := s.Run(name)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(name, cmp.Model.TotalGFLOPS, cmp.Sim.TotalGFLOPS)
	}
	fmt.Println(t)

	// Let the optimizer find the best uniform per-node allocation,
	// both for raw throughput and under a fairness objective (the
	// throughput optimum may starve the memory-bound app entirely).
	rapps := []roofline.App{apps[0].App(), apps[1].App()}
	counts, _, best, err := roofline.BestPerNodeCounts(m, rapps, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer (total GFLOPS):  counts %v -> %.1f GFLOPS total\n", counts, best.TotalGFLOPS)
	fcounts, _, fair, err := roofline.BestPerNodeCounts(m, rapps, roofline.MinAppGFLOPS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer (fairness):      counts %v -> %.1f / %.1f GFLOPS per app\n",
		fcounts, fair.AppGFLOPS[0], fair.AppGFLOPS[1])
}
