// Library delegation: the paper's tightly-integrated scenario. A main
// application periodically delegates a job to a "library" application.
// With the agent's fast core shifting (all cores to the library while
// its call runs, back afterwards), the composed application finishes
// sooner than with a static half-and-half split.
//
//	go run ./examples/library_delegation
package main

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

func run(boost bool) float64 {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{Machine: m})
	o.Start()

	main := taskrt.New(o, taskrt.Config{Name: "main", BindMode: taskrt.BindNode})
	lib := taskrt.New(o, taskrt.Config{Name: "library", BindMode: taskrt.BindNode})
	ag := agent.New(o, agent.Config{}, agent.Static{}, main, lib)

	// Static halves by default.
	main.SetTotalThreads(16)
	lib.SetTotalThreads(16)

	d := &workload.Delegation{
		Main: main, Library: lib,
		PhaseGFlop: 2.0, PhaseAI: 0, // serial main phase
		LibTasks: 64, LibTaskGFlop: 0.1, LibAI: 0, // parallel library job
		Calls: 10,
	}
	if boost {
		d.OnCallStart = func(int) { ag.Boost(1) } // all cores to the library
		d.OnCallEnd = func(int) { ag.Restore() }  // and back
	}
	var doneAt des.Time
	d.Start(func() { doneAt = eng.Now(); eng.Halt() })
	eng.RunUntil(600)
	return float64(doneAt)
}

func main() {
	static := run(false)
	boosted := run(true)

	t := metrics.NewTable("library delegation: static split vs agent core-shifting",
		"setup", "runtime (s)")
	t.AddRow("static 16/16 core split", static)
	t.AddRow("agent shifts cores per call", boosted)
	fmt.Println(t)
	fmt.Printf("speedup from fast core shifting: %.2fx\n", static/boosted)
	fmt.Println()
	fmt.Println("When the library runs, every core works on its tasks; when it returns,")
	fmt.Println("the cores move back to the main application — the paper's motivation for")
	fmt.Println("quick dynamic reallocation between tightly-integrated components.")
}
