// Distributed: the paper's Section V scenario. A four-node cluster runs
// an MPI-like application while one node's cores are partly owned by a
// co-located component. The example shows how much of the node-local
// slowdown leaks into the overall runtime under barrier vs loose
// synchronization and static vs dynamic work distribution.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/taskrt"
)

func run(dist cluster.DistMode, sync cluster.SyncMode, slowNode bool) float64 {
	c := cluster.New(cluster.Config{
		Nodes:      4,
		Machine:    machine.PaperModel(),
		OS:         osched.Config{},
		NetLatency: 50 * des.Microsecond,
		Seed:       1,
	})
	j := cluster.NewJob(c, cluster.JobConfig{
		TotalChunks:   48,
		TasksPerChunk: 32,
		TaskGFlop:     0.05,
		Dist:          dist,
		Sync:          sync,
		RuntimeConfig: taskrt.Config{BindMode: taskrt.BindCore},
	})
	if slowNode {
		// A co-located application owns 24 of node 0's 32 cores.
		j.Runtime(0).SetTotalThreads(8)
	}
	j.Run(nil)
	c.Eng.RunUntil(600)
	done, at := j.Done()
	if !done {
		panic("job did not finish")
	}
	return float64(at)
}

func main() {
	configs := []struct {
		name string
		dist cluster.DistMode
		sync cluster.SyncMode
	}{
		{"static + barrier every round", cluster.Static, cluster.Barrier},
		{"static + loose", cluster.Static, cluster.Loose},
		{"dynamic work queue", cluster.Dynamic, cluster.Loose},
	}

	t := metrics.NewTable("distributed run, 48 chunks over 4 nodes",
		"scheme", "all nodes full (s)", "node 0 at 1/4 cores (s)", "slowdown")
	for _, cfg := range configs {
		fast := run(cfg.dist, cfg.sync, false)
		slow := run(cfg.dist, cfg.sync, true)
		t.AddRow(cfg.name, fast, slow, slow/fast)
	}
	fmt.Println(t)
	fmt.Println("Barrier-synchronized codes are dragged down by the slowest node, so")
	fmt.Println("node-local core reallocation barely helps; loosely-synchronized and")
	fmt.Println("dynamically-distributed codes let the faster nodes absorb the work —")
	fmt.Println("the paper's argument for which applications benefit from on-node speedup.")
}
