// Heterogeneous runtimes: the paper's future-work scenario — an
// OCR-Vx-style task runtime and a TBB-style arena runtime cooperating
// on one machine. Both implement the same agent control interface
// (per-NUMA-node thread counts), so a single roofline-driven agent can
// arbitrate cores between them; a decentralized negotiation reaches the
// same split without any agent.
//
//	go run ./examples/heterogeneous_runtimes
package main

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/arena"
	"repro/internal/consensus"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

func main() {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{Machine: m})
	o.Start()

	// An OCR-like application: memory-bound tasks under a NUMA-aware
	// scheduler.
	ocr := taskrt.New(o, taskrt.Config{Name: "ocr-app", BindMode: taskrt.BindNode, Scheduler: taskrt.NUMAAware})
	stream := &workload.Continuous{RT: ocr, TaskGFlop: 0.05, AI: 0.5}
	stream.Start()

	// A TBB-like application: a master thread alternating serial phases
	// with parallel regions spread over per-node arenas.
	tbb := arena.New(o, arena.Config{Name: "tbb-app"})
	var steps []arena.Step
	for n := 0; n < m.NumNodes(); n++ {
		steps = append(steps,
			arena.Step{Kind: arena.StepSerial, GFlop: 0.05},
			arena.Step{Kind: arena.StepParallel, Node: machine.NodeID(n), Tasks: 16, GFlop: 0.05, AI: 10},
		)
	}
	tbb.NewMaster("tbb-main", steps, true)

	// One agent arbitrates both runtimes under a fairness objective:
	// the memory-bound OCR app only needs enough threads per node to
	// saturate the memory bandwidth, so the compute-bound TBB app gets
	// the rest (the roofline model's Table I insight).
	pol := &agent.RooflineOptimal{
		Specs:     []agent.AppSpec{{AI: 0.5}, {AI: 10}},
		Objective: roofline.MinAppGFLOPS,
	}
	ag := agent.New(o, agent.Config{Period: 10 * des.Millisecond}, pol, ocr, tbb)
	ag.Start()

	eng.RunUntil(1)
	so, st := ocr.Stats(), tbb.Stats()
	t := metrics.NewTable("after 1 simulated second under one agent",
		"runtime", "kind", "active threads", "GFLOPS", "tasks done")
	t.AddRow("ocr-app", "task DAG + NUMA-aware scheduler", so.Workers-so.Suspended, so.GFlopDone, so.TasksExecuted)
	t.AddRow("tbb-app", "arenas + RML + master thread", st.Workers-st.Suspended, st.GFlopDone, st.TasksExecuted)
	fmt.Println(t)

	// The decentralized variant: both runtimes negotiate the same kind
	// of split over a message bus, no agent involved.
	eng2 := des.NewEngine(1)
	o2 := osched.New(eng2, osched.Config{Machine: m})
	o2.Start()
	ocr2 := taskrt.New(o2, taskrt.Config{Name: "ocr-app", BindMode: taskrt.BindNode})
	tbb2 := arena.New(o2, arena.Config{Name: "tbb-app"})
	bus := consensus.NewBus(eng2, m, des.Millisecond)
	pOCR := bus.Join(ocr2, []int{2, 2, 2, 2}, true) // memory-bound: wants few
	pTBB := bus.Join(tbb2, []int{6, 6, 6, 6}, true) // compute-bound: wants many
	bus.Start()
	eng2.RunUntil(0.1)

	fmt.Println("decentralized negotiation (no agent):")
	fmt.Printf("  agreed epochs: ocr=%d tbb=%d, conflicts: %d\n", pOCR.Agreed(), pTBB.Agreed(), pOCR.Conflicts())
	fmt.Printf("  agreed plan (threads per node): ocr=%v tbb=%v\n", pOCR.Applied()[0], pOCR.Applied()[1])
	fmt.Printf("  messages exchanged: %d\n", bus.Messages())
}
