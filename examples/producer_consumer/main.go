// Producer-consumer: the paper's cooperating-applications experiment.
// Two task-runtime applications share a machine; an agent adjusts their
// thread counts so the producer stays only a few iterations ahead,
// bounding the intermediate data, and the run is compared against the
// uncoordinated baseline.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

type outcome struct {
	seconds   float64
	maxItems  int
	meanItems float64
}

func run(coordinated bool) outcome {
	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{Machine: m})
	o.Start()

	prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindNode})
	cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindNode})
	p := &workload.Pipeline{
		Producer: prod, Consumer: cons,
		TasksPerIter:      16,
		ProducerTaskGFlop: 0.02,
		ConsumerTaskGFlop: 0.08,
		Iterations:        80,
		ItemSizeGB:        1,
	}
	if coordinated {
		pol := &agent.Align{Pipeline: p, ProducerClient: 0, ConsumerClient: 1, MinLead: 1, MaxLead: 4}
		agent.New(o, agent.Config{Period: 5 * des.Millisecond}, pol, prod, cons).Start()
	}
	var doneAt des.Time
	p.Start(func() { doneAt = eng.Now(); eng.Halt() })
	eng.RunUntil(600)
	return outcome{seconds: float64(doneAt), maxItems: p.MaxQueueDepth(), meanItems: p.MeanQueueDepth()}
}

func main() {
	free := run(false)
	coord := run(true)

	t := metrics.NewTable("producer-consumer: coordinated vs uncoordinated",
		"setup", "runtime (s)", "max intermediate items", "mean intermediate items")
	t.AddRow("uncoordinated (full thread pools)", free.seconds, free.maxItems, free.meanItems)
	t.AddRow("agent-coordinated (lead band [1,4])", coord.seconds, coord.maxItems, coord.meanItems)
	fmt.Println(t)

	fmt.Printf("intermediate-data reduction: %.1fx (mean)\n", free.meanItems/coord.meanItems)
	fmt.Printf("runtime ratio (coordinated/uncoordinated): %.3f\n", coord.seconds/free.seconds)
	fmt.Println()
	fmt.Println("This mirrors the paper's observation: coordination clearly shrinks the")
	fmt.Println("intermediate data, while the end-to-end runtime does not suffer (here it")
	fmt.Println("even improves slightly, because the uncoordinated run over-subscribes")
	fmt.Println("every core with both applications' worker threads).")
}
