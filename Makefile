# Standard entry points. `make check` is the full gate: build, vet, and
# the test suite under the race detector (the control plane's registry
# and solver are exercised concurrently over real HTTP).

GO ?= go

.PHONY: all build vet test race bench chaos check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Fault-tolerance suite: kill/restart a real daemon mid-workload under
# injected transport faults, clock-skewed TTL expiry, and server-side
# fault storms (see internal/ctrlplane/chaos_test.go).
chaos:
	$(GO) test -race -count 1 -run 'TestChaos' -v ./internal/ctrlplane/

check: build vet race

fmt:
	gofmt -l -w .
