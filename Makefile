# Standard entry points. `make check` is the full gate: build, vet, and
# the test suite under the race detector (the control plane's registry
# and solver are exercised concurrently over real HTTP).

GO ?= go

.PHONY: all build vet test race bench check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

check: build vet race

fmt:
	gofmt -l -w .
