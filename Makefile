# Standard entry points. `make check` is the full gate: build, vet, and
# the test suite under the race detector (the control plane's registry
# and solver are exercised concurrently over real HTTP).

GO ?= go

.PHONY: all build vet test race bench bench-fleet bench-guard benchall chaos fleet-chaos drift-chaos fleet-sim fleet-sim-race fuzz check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Solver-path benchmarks (roofline search/evaluator + control-plane
# serve path), written to BENCH_solver.json so CI tracks the perf
# trajectory PR-over-PR. The raw `go test -bench` stream still prints
# (via stderr). `make benchall` is the full unfiltered sweep.
bench:
	$(GO) test -bench 'BenchmarkSolve|BenchmarkEvaluate|BenchmarkEvaluator|BenchmarkAllocate' \
		-benchmem -run '^$$' ./internal/roofline/ ./internal/ctrlplane/ \
		| $(GO) run ./cmd/benchjson > BENCH_solver.json

# Placement-throughput benchmarks (decisions/sec against 100- and
# 1000-machine fleet snapshots), written to BENCH_fleet.json so CI
# tracks fleet-scale scheduling latency the same way BENCH_solver.json
# tracks the single-machine solver.
bench-fleet:
	$(GO) test -bench 'BenchmarkPlacement' -benchmem -run '^$$' ./internal/fleet/ \
		| $(GO) run ./cmd/benchjson > BENCH_fleet.json

# Perf-regression gate: re-measure both benchmark suites and compare
# against the JSON baselines committed at HEAD. Fails on any tracked
# benchmark regressing more than 25% in ns/op or allocs/op (a
# zero-alloc baseline growing any allocations fails outright), or
# going missing from the fresh run (see cmd/benchdiff). Compares the working-tree artifacts, so
# run after `make bench bench-fleet` has refreshed them (CI does exactly
# that; `make bench bench-fleet bench-guard` locally).
bench-guard:
	git show HEAD:BENCH_solver.json > .bench-baseline-solver.json
	git show HEAD:BENCH_fleet.json > .bench-baseline-fleet.json
	$(GO) run ./cmd/benchdiff -baseline .bench-baseline-solver.json -fresh BENCH_solver.json
	$(GO) run ./cmd/benchdiff -baseline .bench-baseline-fleet.json -fresh BENCH_fleet.json
	rm -f .bench-baseline-solver.json .bench-baseline-fleet.json

benchall:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Fault-tolerance suite: kill/restart a real daemon mid-workload under
# injected transport faults, clock-skewed TTL expiry, server-side fault
# storms (see internal/ctrlplane/chaos_test.go), and the HA scenario —
# leader killed mid-heartbeat-storm, promotion within the lease bound
# (see internal/ctrlplane/replica/replica_test.go).
chaos:
	$(GO) test -race -count 1 -run 'TestChaos' -v ./internal/ctrlplane/ ./internal/ctrlplane/replica/

# Fleet-level chaos: a member machine is partitioned off the network,
# the rebalancer re-homes its apps within the per-round move bound, and
# after the partition heals the revived member's duplicate
# registrations are cleaned up and load re-spreads (see
# internal/fleet/chaos_test.go).
fleet-chaos:
	$(GO) test -race -count 1 -run 'TestChaosFleet' -v ./internal/fleet/

# Adaptive-loop chaos: a mis-declared app is re-fit online, the leader
# is killed mid-recalibration, and the journaled fitted model must
# survive failover — the promoted follower keeps serving the corrected
# allocation and re-confirms the drift when telemetry resumes (see
# internal/ctrlplane/replica/drift_chaos_test.go).
drift-chaos:
	$(GO) test -race -count 1 -run 'TestChaosDrift' -v ./internal/ctrlplane/replica/

# Trace-driven fleet stress harness: replay the checked-in scenario
# corpus (diurnal wave, flash crowd, autoscale churn, mis-declared
# drift with a mid-scenario leader kill, rebalance flapping) against
# live in-process coopd members and check the stability invariants —
# exactly-once, bounded-churn, no-oscillation, convergence — after
# every round. Writes the machine-readable verdicts to
# fleet-sim-verdicts.json (see internal/fleetsim and cmd/fleetsim).
fleet-sim:
	$(GO) run ./cmd/fleetsim -out fleet-sim-verdicts.json

# Race-detector smoke over a three-scenario subset: diurnal (the
# densest steady-state churn — placer, rebalancer, and telemetry all
# active every round), correlated_failure (the mass-death path: storm
# triage, quarantine bookkeeping, and urgent evacuation hammering the
# inventory concurrently with polls), and priority_inversion (the
# preemption pass: class-ranked triage and victim planning touching
# the priority map concurrently with polls). The full corpus under
# -race is too slow for every push; these three cover the lock-heavy
# paths.
fleet-sim-race:
	$(GO) run -race ./cmd/fleetsim -run diurnal,correlated_failure,priority_inversion

# 30s coverage-guided smoke over the incremental-evaluator equivalence
# property; regressions in the fast path show up as counterexamples.
fuzz:
	$(GO) test -fuzz FuzzEvaluatorEquivalence -fuzztime 30s -run '^$$' ./internal/roofline/

check: build vet race

fmt:
	gofmt -l -w .
