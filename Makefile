# Standard entry points. `make check` is the full gate: build, vet, and
# the test suite under the race detector (the control plane's registry
# and solver are exercised concurrently over real HTTP).

GO ?= go

.PHONY: all build vet test race bench benchall chaos check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Solver-path benchmarks (roofline search/evaluator + control-plane
# serve path), written to BENCH_solver.json so CI tracks the perf
# trajectory PR-over-PR. The raw `go test -bench` stream still prints
# (via stderr). `make benchall` is the full unfiltered sweep.
bench:
	$(GO) test -bench 'BenchmarkSolve|BenchmarkEvaluate|BenchmarkEvaluator|BenchmarkAllocate' \
		-benchmem -run '^$$' ./internal/roofline/ ./internal/ctrlplane/ \
		| $(GO) run ./cmd/benchjson > BENCH_solver.json

benchall:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Fault-tolerance suite: kill/restart a real daemon mid-workload under
# injected transport faults, clock-skewed TTL expiry, and server-side
# fault storms (see internal/ctrlplane/chaos_test.go).
chaos:
	$(GO) test -race -count 1 -run 'TestChaos' -v ./internal/ctrlplane/

check: build vet race

fmt:
	gofmt -l -w .
