// Command coopctl is the CLI for the coopd control plane: register
// synthetic applications, send heartbeats, dump allocations, and watch
// reallocation happen as applications join and leave.
//
// Usage:
//
//	coopctl [-server URL] register -name stream -ai 0.5 [-placement numa-bad -home 0] [-max 8] [-ttl 10s]
//	coopctl [-server URL] heartbeat -id stream-1 [-workers 8 -running 6]
//	coopctl [-server URL] deregister -id stream-1
//	coopctl [-server URL] report -id stream-1 -gflops 2.9 -gbs 0.29 [-threads 8]
//	coopctl [-server URL] apps
//	coopctl [-server URL] alloc
//	coopctl [-server URL] drift
//	coopctl [-server URL] machine
//	coopctl [-server URL] watch [-interval 500ms]
//	coopctl [-server URL] demo [-keep]
//	coopctl [-server URL] health
//	coopctl [-server URL] status [-max-lag 5s]
//	coopctl fleet machines [-fleet URL]
//	coopctl fleet place -name stream -ai 0.5 [-placement numa-bad -home 0] [-priority latency] [-fleet URL]
//	coopctl fleet place -gang web -replicas 3 -policy spread -ai 0.5 [-priority latency] [-fleet URL]
//	coopctl fleet drain -machine a [-undo] [-fleet URL]
//	coopctl fleet upgrade [-machines a,b,c] [-floor 0.5] [-abort] [-status] [-fleet URL]
//	coopctl fleet plan [-fleet URL]
//
// demo registers the paper's Table I mix (three memory-bound apps at
// AI 0.5 and one compute-bound at AI 10), prints the served allocation
// (254 GFLOPS on the paper-model machine, vs 140 even / 128
// node-per-app), deregisters the compute-bound app, and shows the
// reallocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/client"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8377", "control-plane base URL")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	c := client.New(*server, client.Config{})
	ctx := context.Background()
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "register":
		err = cmdRegister(ctx, c, args)
	case "heartbeat":
		err = cmdHeartbeat(ctx, c, args)
	case "deregister":
		err = cmdDeregister(ctx, c, args)
	case "report":
		err = cmdReport(ctx, c, args)
	case "apps":
		err = cmdApps(ctx, c)
	case "alloc":
		err = cmdAlloc(ctx, c)
	case "drift":
		err = cmdDrift(ctx, c)
	case "machine":
		err = cmdMachine(ctx, c)
	case "watch":
		err = cmdWatch(ctx, c, args)
	case "demo":
		err = cmdDemo(ctx, c, args)
	case "health":
		err = cmdHealth(ctx, c)
	case "status":
		err = cmdStatus(ctx, c, args)
	case "fleet":
		err = cmdFleet(ctx, args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coopctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coopctl [-server URL] <register|heartbeat|report|deregister|apps|alloc|drift|machine|watch|demo|health|status|fleet> [flags]")
	fmt.Fprintln(os.Stderr, "       coopctl fleet <machines|place|drain|plan|upgrade> [-fleet URL] [flags]")
}

func cmdRegister(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	name := fs.String("name", "app", "application name")
	ai := fs.Float64("ai", 1, "arithmetic intensity (FLOP/byte)")
	placement := fs.String("placement", "", "numa-perfect (default) or numa-bad")
	home := fs.Int("home", 0, "home node for numa-bad placement")
	max := fs.Int("max", 0, "max threads (0: uncapped)")
	ttl := fs.Duration("ttl", 0, "heartbeat deadline (0: server default)")
	fs.Parse(args)
	resp, err := c.Register(ctx, ctrlplane.RegisterRequest{
		Name: *name, AI: *ai, Placement: *placement, HomeNode: *home,
		MaxThreads: *max, TTLMillis: ttl.Milliseconds(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("registered %s (generation %d, ttl %dms)\n", resp.ID, resp.Generation, resp.TTLMillis)
	if resp.Allocation != nil {
		fmt.Printf("allocation: per-node %v, %d threads, predicted %s GFLOPS\n",
			resp.Allocation.PerNode, resp.Allocation.Threads, metrics.FormatFloat(resp.Allocation.PredictedGFLOPS))
	}
	return nil
}

func cmdHeartbeat(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("heartbeat", flag.ExitOnError)
	id := fs.String("id", "", "application id (from register)")
	workers := fs.Int("workers", 0, "worker thread count")
	running := fs.Int("running", 0, "running workers")
	pending := fs.Int("pending", 0, "queued tasks")
	gflops := fs.Float64("gflops", 0, "observed GFLOP/s")
	gbs := fs.Float64("gbs", 0, "observed GB/s")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("heartbeat: -id is required")
	}
	resp, err := c.Heartbeat(ctx, ctrlplane.HeartbeatRequest{
		ID: *id, Workers: *workers, Running: *running, Pending: *pending,
		GFlopRate: *gflops, GBRate: *gbs,
	})
	if err != nil {
		if client.IsNotFound(err) {
			return fmt.Errorf("%s was evicted (missed its heartbeat deadline); re-register it", *id)
		}
		return err
	}
	fmt.Printf("ok (generation %d)", resp.Generation)
	if resp.Allocation != nil {
		fmt.Printf(", allocation per-node %v", resp.Allocation.PerNode)
	}
	fmt.Println()
	return nil
}

func cmdDeregister(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("deregister", flag.ExitOnError)
	id := fs.String("id", "", "application id")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("deregister: -id is required")
	}
	if err := c.Deregister(ctx, *id); err != nil {
		return err
	}
	fmt.Printf("deregistered %s\n", *id)
	return nil
}

// cmdReport sends one telemetry sample to the adaptive loop (apps
// normally stream these themselves; the CLI form is for experiments).
func cmdReport(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	id := fs.String("id", "", "application id (from register)")
	gflops := fs.Float64("gflops", 0, "observed GFLOP/s")
	gbs := fs.Float64("gbs", 0, "observed GB/s")
	threads := fs.Int("threads", 0, "thread count the rates were observed under")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("report: -id is required")
	}
	resp, err := c.Report(ctx, ctrlplane.ReportRequest{
		ID:      *id,
		Samples: []ctrlplane.ReportSample{{GFLOPS: *gflops, GBps: *gbs, Threads: *threads}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s", *id, resp.State)
	if resp.FittedAI > 0 {
		fmt.Printf(", fitted AI %s (confidence %.2f, rel err %.0f%%)",
			metrics.FormatFloat(resp.FittedAI), resp.Confidence, resp.RelErr*100)
	}
	if resp.Drifted {
		fmt.Printf(", fitted model applied")
	}
	fmt.Printf(" (generation %d)\n", resp.Generation)
	return nil
}

// cmdDrift renders the adaptive loop's per-app drift view.
func cmdDrift(ctx context.Context, c *client.Client) error {
	resp, err := c.Drift(ctx)
	if err != nil {
		return err
	}
	if !resp.Enabled {
		fmt.Println("adaptive recalibration disabled (start coopd with -recalibrate)")
		return nil
	}
	t := metrics.NewTable(
		fmt.Sprintf("drift status (threshold %.0f%%, generation %d)", resp.Threshold*100, resp.Generation),
		"id", "name", "state", "declared AI", "fitted AI", "conf", "rel err %", "windows", "resolves", "applied")
	for _, a := range resp.Apps {
		applied := ""
		if a.Applied {
			applied = fmt.Sprintf("AI %s", metrics.FormatFloat(a.AppliedAI))
		}
		t.AddRow(a.ID, a.Name, a.State, a.DeclaredAI, metrics.FormatFloat(a.FittedAI),
			fmt.Sprintf("%.2f", a.Confidence), fmt.Sprintf("%.1f", a.RelErrPct),
			a.Windows, a.Resolves, applied)
	}
	fmt.Print(t)
	fmt.Printf("confirmed %d, cleared %d, refits %d, phase changes %d\n",
		resp.Confirmed, resp.Cleared, resp.Refits, resp.PhaseChanges)
	return nil
}

func cmdApps(ctx context.Context, c *client.Client) error {
	resp, err := c.Apps(ctx)
	if err != nil {
		return err
	}
	t := metrics.NewTable(fmt.Sprintf("registered applications (generation %d)", resp.Generation),
		"id", "name", "AI", "placement", "ttl (ms)", "idle (ms)", "beats")
	for _, a := range resp.Apps {
		t.AddRow(a.ID, a.Name, a.AI, a.Placement, a.TTLMillis, a.IdleMillis, a.Beats)
	}
	fmt.Print(t)
	return nil
}

func cmdAlloc(ctx context.Context, c *client.Client) error {
	resp, err := c.Allocations(ctx)
	if err != nil {
		return err
	}
	printAlloc(resp)
	return nil
}

func printAlloc(resp *ctrlplane.AllocationsResponse) {
	t := metrics.NewTable(
		fmt.Sprintf("%s, policy %s, generation %d", resp.Machine, resp.Policy, resp.Generation),
		"id", "name", "per-node threads", "total", "predicted GFLOPS")
	for _, a := range resp.Apps {
		t.AddRow(a.ID, a.Name, fmt.Sprint(a.PerNode), a.Threads, a.PredictedGFLOPS)
	}
	fmt.Print(t)
	fmt.Printf("total: %s GFLOPS", metrics.FormatFloat(resp.TotalGFLOPS))
	if r := resp.Reference; r != nil {
		fmt.Printf(" (references: even %s, node-per-app %s)",
			metrics.FormatFloat(r.EvenGFLOPS), metrics.FormatFloat(r.NodePerAppGFLOPS))
	}
	fmt.Printf(", cache hit: %v\n", resp.CacheHit)
}

// cmdMachine dumps the daemon's machine topology — the same payload
// resilient clients cache so they can fall back to a local solve when
// the daemon is unreachable.
func cmdMachine(ctx context.Context, c *client.Client) error {
	resp, err := c.Machine(ctx)
	if err != nil {
		return err
	}
	m := resp.Machine
	fmt.Printf("%s (policy %s, generation %d)\n", m, resp.Policy, resp.Generation)
	t := metrics.NewTable("NUMA nodes", "node", "cores", "peak GFLOPS/core", "mem GB/s")
	for i, n := range m.Nodes {
		t.AddRow(i, n.Cores, n.PeakGFLOPS, n.MemBandwidth)
	}
	fmt.Print(t)
	return nil
}

func cmdWatch(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval")
	fs.Parse(args)
	resp, err := c.Allocations(ctx)
	if err != nil {
		return err
	}
	printAlloc(resp)
	for {
		next, err := c.WaitForReallocation(ctx, resp.Generation, *interval)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- reallocation: generation %d -> %d --\n", resp.Generation, next.Generation)
		printAlloc(next)
		resp = next
	}
}

func cmdDemo(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	keep := fs.Bool("keep", false, "leave the demo apps registered on exit")
	fs.Parse(args)

	fmt.Println("registering the paper's Table I mix: 3x memory-bound (AI 0.5) + 1x compute-bound (AI 10)")
	reqs := []ctrlplane.RegisterRequest{
		{Name: "mem-bound-a", AI: 0.5},
		{Name: "mem-bound-b", AI: 0.5},
		{Name: "mem-bound-c", AI: 0.5},
		{Name: "comp-bound", AI: 10},
	}
	var ids []string
	for _, r := range reqs {
		resp, err := c.Register(ctx, r)
		if err != nil {
			return err
		}
		ids = append(ids, resp.ID)
	}
	if !*keep {
		defer func() {
			for _, id := range ids {
				c.Deregister(context.Background(), id)
			}
		}()
	}
	alloc, err := c.Allocations(ctx)
	if err != nil {
		return err
	}
	fmt.Println()
	printAlloc(alloc)

	fmt.Printf("\nderegistering %s to trigger reallocation...\n", ids[3])
	if err := c.Deregister(ctx, ids[3]); err != nil {
		return err
	}
	next, err := c.WaitForReallocation(ctx, alloc.Generation, 100*time.Millisecond)
	if err != nil {
		return err
	}
	printAlloc(next)
	ids = ids[:3]
	return nil
}

func cmdHealth(ctx context.Context, c *client.Client) error {
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%s: machine %s, %d apps, generation %d, up %.1fs\n",
		h.Status, h.Machine, h.Apps, h.Generation, h.UptimeSeconds)
	return nil
}

// cmdStatus shows the replica's role, lease, fencing epoch, and
// replication lag, plus the solver cache counters from /metricsz. A
// standalone daemon 404s the replica endpoint; that is rendered, not
// errored. A follower whose replication lag exceeds -max-lag makes the
// command fail (exit nonzero), so scripts probing an endpoint learn its
// answers may be stale.
func cmdStatus(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	maxLag := fs.Duration("max-lag", 5*time.Second, "fail when a follower's replication lag exceeds this")
	fs.Parse(args)

	var stale error
	st, err := c.ReplicaStatus(ctx)
	switch {
	case client.IsNotFound(err):
		fmt.Println("standalone (not replicated)")
	case err != nil:
		return err
	default:
		fmt.Printf("%s %s (epoch %d, generation %d)\n", st.Role, st.Self, st.Epoch, st.Generation)
		if st.Leader != "" {
			fmt.Printf("  leader: %s\n", st.Leader)
		}
		fmt.Printf("  lease remaining: %dms\n", st.LeaseRemainingMillis)
		fmt.Printf("  applied seq: %d", st.AppliedSeq)
		if st.Role == "follower" {
			fmt.Printf(", replication lag: %dms", st.LagMillis)
		}
		fmt.Println()
		if st.Promotions > 0 {
			fmt.Printf("  promotions: %d\n", st.Promotions)
		}
		if len(st.Peers) > 0 {
			fmt.Printf("  peers: %v\n", st.Peers)
		}
		if st.Role == "follower" && st.LagMillis > maxLag.Milliseconds() {
			stale = fmt.Errorf("follower replication lag %dms exceeds -max-lag %s", st.LagMillis, maxLag)
		}
	}

	mt, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	s := mt.Solver
	total := s.Hits + s.Misses
	hitRate := 0.0
	if total > 0 {
		hitRate = 100 * float64(s.Hits) / float64(total)
	}
	fmt.Printf("  solver cache: %d hits / %d misses (%.1f%% hit), %d coalesced, %d entries\n",
		s.Hits, s.Misses, hitRate, s.Coalesced, s.Entries)
	return stale
}

// --- fleet subcommands (talk to fleetd, not coopd) ---

// cmdFleet dispatches `coopctl fleet <machines|place|drain|plan>`. Each
// subcommand takes its own -fleet flag because the fleet daemon is a
// different process from the coopd the global -server points at.
func cmdFleet(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("fleet: want a subcommand: machines | place | drain | plan | upgrade")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "machines":
		return cmdFleetMachines(ctx, rest)
	case "place":
		return cmdFleetPlace(ctx, rest)
	case "drain":
		return cmdFleetDrain(ctx, rest)
	case "plan":
		return cmdFleetPlan(ctx, rest)
	case "upgrade":
		return cmdFleetUpgrade(ctx, rest)
	default:
		return fmt.Errorf("fleet: unknown subcommand %q (want machines | place | drain | plan | upgrade)", sub)
	}
}

func fleetFlags(fs *flag.FlagSet) *string {
	return fs.String("fleet", "http://127.0.0.1:8380", "fleetd base URL")
}

func cmdFleetMachines(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet machines", flag.ExitOnError)
	server := fleetFlags(fs)
	fs.Parse(args)
	resp, err := fleet.NewClient(*server, nil).Machines(ctx)
	if err != nil {
		return err
	}
	t := metrics.NewTable(fmt.Sprintf("fleet machines (aggregate %s GFLOPS)", metrics.FormatFloat(resp.FleetGFLOPS)),
		"id", "status", "machine", "apps", "numa-bad", "GFLOPS", "seen (ms)", "endpoints")
	for _, m := range resp.Machines {
		status := m.Status
		if m.Draining {
			status += "+draining"
		}
		t.AddRow(m.ID, status, m.Machine, len(m.Apps), m.NUMABadApps,
			metrics.FormatFloat(m.TotalGFLOPS), m.SinceSeenMillis, strings.Join(m.Endpoints, ","))
	}
	fmt.Print(t)
	return nil
}

func cmdFleetPlace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet place", flag.ExitOnError)
	server := fleetFlags(fs)
	name := fs.String("name", "app", "application name")
	ai := fs.Float64("ai", 1, "arithmetic intensity (FLOP/byte)")
	placement := fs.String("placement", "", "numa-perfect (default) or numa-bad")
	home := fs.Int("home", 0, "home node for numa-bad placement")
	max := fs.Int("max", 0, "max threads (0: uncapped)")
	ttl := fs.Duration("ttl", 0, "heartbeat deadline on the chosen machine (0: its default)")
	priority := fs.String("priority", "", "scheduling class: system, latency, or batch (default)")
	gang := fs.String("gang", "", "place an all-or-nothing gang under this name instead of a single app")
	policy := fs.String("policy", "", "gang policy: pack, spread (default), or strict-spread")
	replicas := fs.Int("replicas", 2, "gang member count (with -gang)")
	fs.Parse(args)
	spec := fleet.AppSpec{
		Name: *name, AI: *ai, Placement: *placement, HomeNode: *home,
		MaxThreads: *max, TTLMillis: ttl.Milliseconds(), Priority: *priority,
	}
	cli := fleet.NewClient(*server, nil)
	if *gang != "" {
		res, err := cli.PlaceGang(ctx, fleet.GangSpec{
			Name: *gang, Replicas: *replicas, Policy: *policy, App: spec,
		})
		if err != nil {
			return err
		}
		for _, mv := range res.Preempted {
			fmt.Printf("preempted %s (%s): %s -> %s\n", mv.AppID, mv.App.Name, mv.From, mv.To)
		}
		for _, gp := range res.Placements {
			fmt.Printf("placed %s on %s (marginal %+.1f GFLOPS)\n", gp.App.ID, gp.Member, gp.Score)
		}
		fmt.Printf("gang %s admitted: %d members, policy %s\n", res.Name, len(res.Placements), res.Policy)
		return nil
	}
	if *policy != "" {
		return fmt.Errorf("fleet place: -policy needs -gang")
	}
	resp, err := cli.Place(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("placed %s on %s (marginal %+.1f GFLOPS, machine now %s)\n",
		resp.ID, resp.Machine, resp.Score, metrics.FormatFloat(resp.After))
	fmt.Printf("heartbeat against: %s\n", strings.Join(resp.Endpoints, " | "))
	return nil
}

func cmdFleetDrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet drain", flag.ExitOnError)
	server := fleetFlags(fs)
	machineID := fs.String("machine", "", "member machine id")
	undo := fs.Bool("undo", false, "re-enable placements instead of draining")
	fs.Parse(args)
	if *machineID == "" {
		return fmt.Errorf("fleet drain: -machine is required")
	}
	resp, err := fleet.NewClient(*server, nil).Drain(ctx, *machineID, *undo)
	if err != nil {
		return err
	}
	fmt.Printf("%s draining=%v (rebalancer will move its apps off over the next rounds)\n", resp.Machine, resp.Draining)
	return nil
}

// cmdFleetUpgrade drives the rolling-upgrade controller: start a serial
// drain over the fleet (default), abort a running one, or report
// status. The controller lives in fleetd; this command only submits the
// request and prints the controller's view.
func cmdFleetUpgrade(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet upgrade", flag.ExitOnError)
	server := fleetFlags(fs)
	machines := fs.String("machines", "", "comma-separated drain order (empty: every member in id order)")
	floor := fs.Float64("floor", 0, "abort when the placeable fleet fraction falls below this (0: default 0.5)")
	abort := fs.Bool("abort", false, "abort the running upgrade")
	status := fs.Bool("status", false, "report controller status without changing it")
	fs.Parse(args)
	cli := fleet.NewClient(*server, nil)
	var st *fleet.UpgradeStatus
	var err error
	switch {
	case *status:
		st, err = cli.UpgradeStatus(ctx)
	case *abort:
		st, err = cli.Upgrade(ctx, fleet.UpgradeRequest{Action: "abort"})
	default:
		var list []string
		for _, id := range strings.Split(*machines, ",") {
			if id = strings.TrimSpace(id); id != "" {
				list = append(list, id)
			}
		}
		st, err = cli.Upgrade(ctx, fleet.UpgradeRequest{Action: "start", Machines: list, HealthFloor: *floor})
	}
	if err != nil {
		return err
	}
	fmt.Printf("upgrade %s (health floor %.2f)\n", st.State, st.HealthFloor)
	if st.Current != "" {
		fmt.Printf("  draining: %s\n", st.Current)
	}
	if len(st.Done) > 0 {
		fmt.Printf("  done:  %s\n", strings.Join(st.Done, ", "))
	}
	if len(st.Queue) > 0 {
		fmt.Printf("  queue: %s\n", strings.Join(st.Queue, ", "))
	}
	if st.Reason != "" {
		fmt.Printf("  reason: %s\n", st.Reason)
	}
	return nil
}

func cmdFleetPlan(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet plan", flag.ExitOnError)
	server := fleetFlags(fs)
	fs.Parse(args)
	plan, err := fleet.NewClient(*server, nil).Plan(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("fleet %s GFLOPS now, %s re-packed",
		metrics.FormatFloat(plan.CurrentGFLOPS), metrics.FormatFloat(plan.RepackGFLOPS))
	if len(plan.Moves) == 0 {
		fmt.Println("; no moves planned")
	} else {
		fmt.Println()
		t := metrics.NewTable(fmt.Sprintf("planned moves (%d deferred to later rounds)", plan.Deferred),
			"app", "from", "to", "reason", "score")
		for _, mv := range plan.Moves {
			t.AddRow(mv.AppID, mv.From, mv.To, mv.Reason, metrics.FormatFloat(mv.Score))
		}
		fmt.Print(t)
	}
	fmt.Printf("move budget: %d of %d spent this round", plan.BudgetSpent, plan.Budget)
	if plan.Deferred > 0 {
		fmt.Printf(" (%d deferred)", plan.Deferred)
	}
	fmt.Println()
	if len(plan.Cooldowns) > 0 {
		names := make([]string, 0, len(plan.Cooldowns))
		for name := range plan.Cooldowns {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("anti-thrash cooldowns (rounds until movable again):")
		for _, name := range names {
			fmt.Printf("  %s: %d\n", name, plan.Cooldowns[name])
		}
	}
	for _, sd := range plan.StaleDeregs {
		fmt.Printf("stale duplicate to clean: %s on revived %s\n", sd.AppID, sd.Member)
	}
	return nil
}
