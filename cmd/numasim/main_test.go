package main

import (
	"encoding/json"
	"testing"

	"repro/internal/machine"
)

func parse(t *testing.T, s string) fileConfig {
	t.Helper()
	var fc fileConfig
	if err := json.Unmarshal([]byte(s), &fc); err != nil {
		t.Fatal(err)
	}
	return fc
}

func TestExampleConfigParses(t *testing.T) {
	fc := parse(t, exampleConfig)
	m, err := buildMachine(fc)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalCores() != 32 {
		t.Errorf("preset machine cores = %d, want 32", m.TotalCores())
	}
	al, err := buildAllocation(m, fc.Allocation, len(fc.Apps))
	if err != nil {
		t.Fatal(err)
	}
	if al.TotalThreads() != 32 {
		t.Errorf("allocation total = %d, want 32", al.TotalThreads())
	}
}

func TestBuildMachinePresets(t *testing.T) {
	for _, preset := range []string{"paper-model", "paper-model-numabad", "skylake-quad", "knl-flat", "knl-snc4"} {
		fc := fileConfig{}
		fc.Machine.Preset = preset
		if _, err := buildMachine(fc); err != nil {
			t.Errorf("preset %q: %v", preset, err)
		}
	}
	fc := fileConfig{}
	fc.Machine.Preset = "bogus"
	if _, err := buildMachine(fc); err == nil {
		t.Error("expected error for unknown preset")
	}
}

func TestBuildMachineCustom(t *testing.T) {
	fc := parse(t, `{"machine":{"nodes":2,"cores_per_node":4,"gflops_per_core":5,"node_bandwidth":20,"link_bandwidth":8}}`)
	m, err := buildMachine(fc)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 2 || m.Nodes[0].PeakGFLOPS != 5 || m.Link(0, 1) != 8 {
		t.Errorf("custom machine wrong: %+v", m)
	}
	// Missing dimensions.
	if _, err := buildMachine(fileConfig{}); err == nil {
		t.Error("expected error for empty machine")
	}
}

func TestBuildAllocationShorthand(t *testing.T) {
	m := machine.PaperModel()
	// Single-value rows expand to all nodes.
	al, err := buildAllocation(m, [][]int{{2}, {3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if al.Threads[0][j] != 2 || al.Threads[1][j] != 3 {
			t.Errorf("shorthand expansion wrong at node %d", j)
		}
	}
	// Full rows pass through.
	al, err = buildAllocation(m, [][]int{{1, 2, 3, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if al.Threads[0][2] != 3 {
		t.Error("full row not copied")
	}
}

func TestBuildAllocationErrors(t *testing.T) {
	m := machine.PaperModel()
	if _, err := buildAllocation(m, [][]int{{1}}, 2); err == nil {
		t.Error("expected row-count mismatch error")
	}
	if _, err := buildAllocation(m, [][]int{{1, 2}}, 1); err == nil {
		t.Error("expected row-length error")
	}
}
