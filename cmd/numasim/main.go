// Command numasim evaluates a co-scheduling scenario — a NUMA machine,
// a set of applications, and a per-NUMA-node thread allocation — with
// both the analytic roofline model and the discrete-event simulator,
// and can search for the best allocation.
//
// The scenario is described in JSON (see -example for a template):
//
//	numasim -config scenario.json
//	numasim -config scenario.json -optimize      # search allocations
//	numasim -example > scenario.json             # starter config
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/roofline"
)

// fileConfig is the JSON scenario schema.
type fileConfig struct {
	Machine struct {
		Preset        string  `json:"preset,omitempty"` // paper-model | skylake-quad | knl-flat | knl-snc4
		Nodes         int     `json:"nodes,omitempty"`
		CoresPerNode  int     `json:"cores_per_node,omitempty"`
		GFLOPSPerCore float64 `json:"gflops_per_core,omitempty"`
		NodeBandwidth float64 `json:"node_bandwidth,omitempty"`
		LinkBandwidth float64 `json:"link_bandwidth,omitempty"`
	} `json:"machine"`
	Apps []struct {
		Name     string  `json:"name"`
		AI       float64 `json:"ai"`
		NUMABad  bool    `json:"numa_bad,omitempty"`
		HomeNode int     `json:"home_node,omitempty"`
	} `json:"apps"`
	// Allocation[i] is app i's threads per node (uniform across nodes
	// if a single value is given).
	Allocation [][]int `json:"allocation"`
	// DurationSeconds is the simulated measurement window.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
}

const exampleConfig = `{
  "machine": {"preset": "paper-model"},
  "apps": [
    {"name": "mem1", "ai": 0.5},
    {"name": "mem2", "ai": 0.5},
    {"name": "mem3", "ai": 0.5},
    {"name": "comp", "ai": 10}
  ],
  "allocation": [[1,1,1,1], [1,1,1,1], [1,1,1,1], [5,5,5,5]],
  "duration_seconds": 1.0
}
`

func main() {
	configPath := flag.String("config", "", "scenario JSON file")
	optimize := flag.Bool("optimize", false, "search for the best allocation instead of using the configured one")
	example := flag.Bool("example", false, "print an example config and exit")
	modelOnly := flag.Bool("model-only", false, "skip the simulation")
	flag.Parse()

	if *example {
		fmt.Print(exampleConfig)
		return
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "numasim: -config is required (see -example)")
		os.Exit(2)
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		fail(err)
	}
	var fc fileConfig
	if err := json.Unmarshal(data, &fc); err != nil {
		fail(fmt.Errorf("parsing %s: %w", *configPath, err))
	}
	m, err := buildMachine(fc)
	if err != nil {
		fail(err)
	}
	apps := make([]core.AppConfig, len(fc.Apps))
	rapps := make([]roofline.App, len(fc.Apps))
	for i, a := range fc.Apps {
		apps[i] = core.AppConfig{Name: a.Name, AI: a.AI}
		if a.NUMABad {
			apps[i].Placement = roofline.NUMABad
			apps[i].HomeNode = machine.NodeID(a.HomeNode)
		}
		rapps[i] = apps[i].App()
	}

	if *optimize {
		runOptimize(m, rapps)
		return
	}

	al, err := buildAllocation(m, fc.Allocation, len(apps))
	if err != nil {
		fail(err)
	}
	s := &core.Scenario{Machine: m, Apps: apps, Allocation: al}
	if fc.DurationSeconds > 0 {
		s.Sim.Duration = des.Time(fc.DurationSeconds)
	}

	model, err := s.RunModel()
	if err != nil {
		fail(err)
	}
	fmt.Println("machine:", m)
	fmt.Println("allocation:", al)
	fmt.Println()
	fmt.Println(model.Summary(rapps))

	if *modelOnly {
		return
	}
	sim, err := s.RunSim()
	if err != nil {
		fail(err)
	}
	t := metrics.NewTable("model vs simulation", "app", "model GFLOPS", "simulated GFLOPS")
	for i, a := range apps {
		t.AddRow(a.Name, model.AppGFLOPS[i], sim.AppGFLOPS[i])
	}
	t.AddRow("TOTAL", model.TotalGFLOPS, sim.TotalGFLOPS)
	fmt.Println(t)
	fmt.Printf("simulated CPU utilization: %.1f%%, tasks executed: %d\n",
		sim.Utilization*100, sim.TasksExecuted)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "numasim:", err)
	os.Exit(1)
}

func buildMachine(fc fileConfig) (*machine.Machine, error) {
	switch fc.Machine.Preset {
	case "paper-model":
		return machine.PaperModel(), nil
	case "paper-model-numabad":
		return machine.PaperModelNUMABad(), nil
	case "skylake-quad":
		return machine.SkylakeQuad(), nil
	case "knl-flat":
		return machine.KNLFlat(), nil
	case "knl-snc4":
		return machine.KNLSNC4(), nil
	case "":
		mc := fc.Machine
		if mc.Nodes <= 0 || mc.CoresPerNode <= 0 {
			return nil, fmt.Errorf("machine: need a preset or nodes/cores_per_node")
		}
		m := machine.Uniform("custom", mc.Nodes, mc.CoresPerNode, mc.GFLOPSPerCore, mc.NodeBandwidth, mc.LinkBandwidth)
		return m, m.Validate()
	default:
		return nil, fmt.Errorf("machine: unknown preset %q", fc.Machine.Preset)
	}
}

func buildAllocation(m *machine.Machine, rows [][]int, nApps int) (roofline.Allocation, error) {
	if len(rows) != nApps {
		return roofline.Allocation{}, fmt.Errorf("allocation has %d rows, %d apps configured", len(rows), nApps)
	}
	al := roofline.NewAllocation(nApps, m.NumNodes())
	for i, row := range rows {
		switch len(row) {
		case m.NumNodes():
			copy(al.Threads[i], row)
		case 1:
			for j := range al.Threads[i] {
				al.Threads[i][j] = row[0]
			}
		default:
			return roofline.Allocation{}, fmt.Errorf("allocation row %d has %d entries, want 1 or %d", i, len(row), m.NumNodes())
		}
	}
	return al, nil
}

func runOptimize(m *machine.Machine, apps []roofline.App) {
	counts, _, best, err := roofline.BestPerNodeCounts(m, apps, nil)
	if err != nil {
		fail(err)
	}
	fmt.Println("machine:", m)
	fmt.Println("best uniform per-node counts:", counts)
	fmt.Println()
	fmt.Println(best.Summary(apps))

	al, res, err := roofline.Optimize(m, apps, nil, 0)
	if err != nil {
		fail(err)
	}
	if res.TotalGFLOPS > best.TotalGFLOPS+1e-9 {
		fmt.Println("hill-climbing found a better non-uniform allocation:")
		fmt.Println("allocation:", al)
		fmt.Println(res.Summary(apps))
	}
	aal, ares, err := roofline.Anneal(m, apps, nil, roofline.AnnealConfig{Seed: 1})
	if err != nil {
		fail(err)
	}
	if ares.TotalGFLOPS > res.TotalGFLOPS+1e-9 && ares.TotalGFLOPS > best.TotalGFLOPS+1e-9 {
		fmt.Println("simulated annealing found a better non-uniform allocation:")
		fmt.Println("allocation:", aal)
		fmt.Println(ares.Summary(apps))
	}
}
