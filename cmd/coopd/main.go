// Command coopd runs the allocation control-plane daemon: applications
// register their roofline profile over HTTP, heartbeat their execution
// stats, and receive per-NUMA-node thread allocations computed by the
// agent's policies over the configured machine topology.
//
// Usage:
//
//	coopd                              # paper model machine on :8377
//	coopd -addr :9000 -machine skylake # calibrated Skylake topology
//	coopd -machine topo.json           # custom topology from JSON
//	coopd -policy fairshare            # even split instead of roofline
//	coopd -ttl 5s -sweep 1s            # heartbeat deadline / evict scan
//	coopd -state-dir /var/lib/coopd    # journal registry, survive crashes
//	coopd -recalibrate                 # adaptive loop: telemetry + refits
//	coopd -pprof-addr 127.0.0.1:6060   # net/http/pprof on a private port
//
// With -state-dir the registry is persisted to a snapshot + append-only
// journal; on restart the daemon restores the registered apps, re-arms
// their heartbeat deadlines, and resumes the allocation generation
// counter so watching clients never observe it regress. Registrations
// are fsynced before they are acknowledged unless -write-behind relaxes
// that to a periodic background flush.
//
// High availability (requires -state-dir):
//
//	coopd -self http://a:8377 -peers http://b:8377 -state-dir dirA            # bootstrap leader
//	coopd -self http://b:8377 -peers http://a:8377 -state-dir dirB \
//	      -replica-of http://a:8377                                           # joining follower
//
// Replicas form a leader/follower group: the leader streams its journal
// over GET /v1/replicate, followers serve reads and redirect writes
// (421 + the leader's URL), and when the leader goes silent past
// -lease-ttl a follower promotes itself with a higher fencing epoch.
//
// With -recalibrate the daemon closes the model↔measurement loop:
// applications stream observed GFLOPS/bandwidth samples to POST
// /v1/report, the daemon fits their effective demand online, and on
// confirmed drift it substitutes the fitted model into the solver
// (journaled, so it survives crashes and leader failover) and re-solves.
// -drift-threshold sets the relative fitted-vs-declared error that
// counts as drift. Inspect with GET /v1/drift or `coopctl drift`.
//
// Endpoints: POST /v1/register, POST /v1/heartbeat, POST /v1/report,
// DELETE /v1/apps/{id}, GET /v1/apps, GET /v1/allocations,
// GET /v1/drift, GET /v1/machine, GET /healthz, GET /metricsz,
// GET /tracez. See cmd/coopctl for a CLI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/ctrlplane"
	"repro/internal/ctrlplane/persist"
	"repro/internal/ctrlplane/replica"
	"repro/internal/machine"
)

// maxBodyBytes bounds request bodies: register/heartbeat payloads are a
// few hundred bytes, so 1 MiB is generous and still stops an oversized
// body from ballooning the daemon's memory.
const maxBodyBytes = 1 << 20

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	machineName := flag.String("machine", "paper-model", "topology: paper-model | paper-numabad | skylake | knl-flat | knl-snc4 | path to a machine JSON file")
	policy := flag.String("policy", ctrlplane.PolicyRoofline, "allocation policy: roofline | fairshare")
	ttl := flag.Duration("ttl", 15*time.Second, "default heartbeat deadline before an app is evicted")
	sweep := flag.Duration("sweep", 0, "eviction scan interval (default ttl/4)")
	stateDir := flag.String("state-dir", "", "directory for the registry snapshot + journal (empty: in-memory only, no crash recovery)")
	writeBehind := flag.Bool("write-behind", false, "relax registration durability from fsync-per-write to a periodic background flush")
	self := flag.String("self", "", "this replica's advertised base URL (enables HA when -peers is set)")
	peers := flag.String("peers", "", "comma-separated peer replica URLs (enables HA; requires -self and -state-dir)")
	replicaOf := flag.String("replica-of", "", "join as a follower of this leader URL (default: bootstrap as leader)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Second, "leader lease: how long the leader may go silent before a follower promotes")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent requests per endpoint before shedding with 503 (0: unbounded)")
	recalibrate := flag.Bool("recalibrate", false, "enable the adaptive loop: ingest /v1/report telemetry, refit demand models online, re-solve on confirmed drift")
	driftThreshold := flag.Float64("drift-threshold", 0.25, "relative fitted-vs-declared AI error that counts as drift (with -recalibrate)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.Parse()

	m, err := loadMachine(*machineName)
	if err != nil {
		log.Fatalf("coopd: %v", err)
	}

	var store *persist.Store
	if *stateDir != "" {
		store, err = persist.Open(*stateDir, persist.Options{WriteBehind: *writeBehind})
		if err != nil {
			log.Fatalf("coopd: opening state dir %s: %v", *stateDir, err)
		}
		defer store.Close()
		snap := store.Restored()
		log.Printf("coopd: restored %d apps from %s (generation %d, %d torn journal records dropped)",
			len(snap.Apps), *stateDir, snap.Generation, store.TornRecords())
	}

	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:       m,
		Policy:        *policy,
		DefaultTTL:    *ttl,
		SweepInterval: *sweep,
		Store:         store,
		MaxInFlight:   *maxInFlight,
		Recalibrate:   *recalibrate,
		Adapt:         adapt.Config{DriftThreshold: *driftThreshold},
	})
	if err != nil {
		log.Fatalf("coopd: %v", err)
	}

	handler := srv.Handler()
	var node *replica.Node
	if *peers != "" || *self != "" {
		node, err = replica.NewNode(replica.Config{
			Self:       *self,
			Peers:      splitPeers(*peers),
			Server:     srv,
			LeaseTTL:   *leaseTTL,
			Bootstrap:  *replicaOf == "",
			LeaderHint: *replicaOf,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatalf("coopd: %v", err)
		}
		handler = node.Handler()
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: limitBodies(handler),
		// Slowloris / stuck-peer protection: a client that trickles its
		// headers or body can't pin a connection open indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    64 << 10,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *pprofAddr != "" {
		// pprof registers on http.DefaultServeMux; the API above uses its
		// own mux, so profiling stays on a separate, typically private,
		// port and is entirely off unless the flag is set.
		go func() {
			log.Printf("coopd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("coopd: pprof server: %v", err)
			}
		}()
	}

	srv.Start()
	defer srv.Close()
	if node != nil {
		node.Start()
		defer node.Close()
		log.Printf("coopd: replica %s starting as %s (peers %v, lease %s)", *self, node.Role(), splitPeers(*peers), *leaseTTL)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("coopd: serving %s (policy %s, ttl %s) on %s", m, *policy, *ttl, *addr)
	if *recalibrate {
		log.Printf("coopd: adaptive recalibration on (drift threshold %.0f%%)", *driftThreshold*100)
	}

	select {
	case err := <-errc:
		log.Fatalf("coopd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("coopd: shutting down")
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("coopd: shutdown: %v", err)
	}
}

// limitBodies caps every request body at maxBodyBytes; an oversized
// body makes the JSON decode fail with a 400 instead of exhausting
// memory.
func limitBodies(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// splitPeers parses the comma-separated -peers list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// loadMachine resolves a named topology or reads one from a JSON file.
func loadMachine(name string) (*machine.Machine, error) {
	switch name {
	case "paper-model":
		return machine.PaperModel(), nil
	case "paper-numabad":
		return machine.PaperModelNUMABad(), nil
	case "skylake":
		return machine.SkylakeQuad(), nil
	case "knl-flat":
		return machine.KNLFlat(), nil
	case "knl-snc4":
		return machine.KNLSNC4(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("unknown machine %q and no such file: %w", name, err)
	}
	var m machine.Machine
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parsing machine file %s: %w", name, err)
	}
	return &m, nil
}
