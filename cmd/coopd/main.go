// Command coopd runs the allocation control-plane daemon: applications
// register their roofline profile over HTTP, heartbeat their execution
// stats, and receive per-NUMA-node thread allocations computed by the
// agent's policies over the configured machine topology.
//
// Usage:
//
//	coopd                              # paper model machine on :8377
//	coopd -addr :9000 -machine skylake # calibrated Skylake topology
//	coopd -machine topo.json           # custom topology from JSON
//	coopd -policy fairshare            # even split instead of roofline
//	coopd -ttl 5s -sweep 1s            # heartbeat deadline / evict scan
//
// Endpoints: POST /v1/register, POST /v1/heartbeat,
// DELETE /v1/apps/{id}, GET /v1/apps, GET /v1/allocations,
// GET /healthz, GET /metricsz, GET /tracez. See cmd/coopctl for a CLI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctrlplane"
	"repro/internal/machine"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	machineName := flag.String("machine", "paper-model", "topology: paper-model | paper-numabad | skylake | knl-flat | knl-snc4 | path to a machine JSON file")
	policy := flag.String("policy", ctrlplane.PolicyRoofline, "allocation policy: roofline | fairshare")
	ttl := flag.Duration("ttl", 15*time.Second, "default heartbeat deadline before an app is evicted")
	sweep := flag.Duration("sweep", 0, "eviction scan interval (default ttl/4)")
	flag.Parse()

	m, err := loadMachine(*machineName)
	if err != nil {
		log.Fatalf("coopd: %v", err)
	}
	srv, err := ctrlplane.NewServer(ctrlplane.ServerConfig{
		Machine:       m,
		Policy:        *policy,
		DefaultTTL:    *ttl,
		SweepInterval: *sweep,
	})
	if err != nil {
		log.Fatalf("coopd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv.Start()
	defer srv.Close()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("coopd: serving %s (policy %s, ttl %s) on %s", m, *policy, *ttl, *addr)

	select {
	case err := <-errc:
		log.Fatalf("coopd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("coopd: shutting down")
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("coopd: shutdown: %v", err)
	}
}

// loadMachine resolves a named topology or reads one from a JSON file.
func loadMachine(name string) (*machine.Machine, error) {
	switch name {
	case "paper-model":
		return machine.PaperModel(), nil
	case "paper-numabad":
		return machine.PaperModelNUMABad(), nil
	case "skylake":
		return machine.SkylakeQuad(), nil
	case "knl-flat":
		return machine.KNLFlat(), nil
	case "knl-snc4":
		return machine.KNLSNC4(), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("unknown machine %q and no such file: %w", name, err)
	}
	var m machine.Machine
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("parsing machine file %s: %w", name, err)
	}
	return &m, nil
}
