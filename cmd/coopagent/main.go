// Command coopagent demonstrates the paper's Fig. 1 architecture: two
// cooperating applications (a producer and a consumer built on the
// task runtime) executing on one simulated NUMA node set, coordinated
// by an agent that keeps the producer only a few iterations ahead.
//
//	coopagent                       # coordinated run with timeline
//	coopagent -no-agent             # uncoordinated baseline
//	coopagent -iterations 100       # longer run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agent"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/osched"
	"repro/internal/taskrt"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	iterations := flag.Int("iterations", 60, "pipeline iterations")
	noAgent := flag.Bool("no-agent", false, "disable the coordination agent")
	maxLead := flag.Int("max-lead", 4, "agent's target maximum producer lead")
	traceOut := flag.String("trace", "", "write a Chrome trace JSON of the run to this file")
	flag.Parse()

	m := machine.PaperModel()
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{Machine: m})
	o.Start()

	prod := taskrt.New(o, taskrt.Config{Name: "producer", BindMode: taskrt.BindNode})
	cons := taskrt.New(o, taskrt.Config{Name: "consumer", BindMode: taskrt.BindNode})

	var tr *trace.Trace
	if *traceOut != "" {
		tr = trace.New()
		prod.SetTracer(trace.RuntimeTracer{T: tr})
		cons.SetTracer(trace.RuntimeTracer{T: tr})
	}

	p := &workload.Pipeline{
		Producer: prod, Consumer: cons,
		TasksPerIter:      16,
		ProducerTaskGFlop: 0.02, // producer is lighter: it races ahead unmanaged
		ConsumerTaskGFlop: 0.08,
		Iterations:        *iterations,
		ItemSizeGB:        1,
	}

	var ag *agent.Agent
	if !*noAgent {
		pol := &agent.Align{Pipeline: p, ProducerClient: 0, ConsumerClient: 1, MinLead: 1, MaxLead: *maxLead}
		ag = agent.New(o, agent.Config{Period: 5 * des.Millisecond}, pol, prod, cons)
		ag.Start()
	}

	fmt.Printf("machine: %s\n", m)
	fmt.Printf("pipeline: %d iterations, 16 tasks/iter, producer 0.02 GFlop/task, consumer 0.08 GFlop/task\n", *iterations)
	fmt.Printf("agent: enabled=%v (period 5 ms, lead band [1,%d])\n\n", !*noAgent, *maxLead)
	fmt.Printf("%8s %10s %10s %7s %14s %16s\n", "time", "produced", "consumed", "lead", "producer thr", "intermediate GB")

	stop := eng.Ticker(100*des.Millisecond, func(now des.Time) {
		sp := prod.Stats()
		active := sp.Workers - sp.Suspended
		fmt.Printf("%7.1fs %10d %10d %7d %14d %16.1f\n",
			float64(now), p.ProducedIterations(), p.ConsumedIterations(),
			p.QueueDepth(), active, p.IntermediateGB())
	})

	var doneAt des.Time
	p.Start(func() {
		doneAt = eng.Now()
		stop()
		eng.Halt()
	})
	eng.RunUntil(600)

	fmt.Println()
	if doneAt == 0 {
		fmt.Println("pipeline did not finish within 600 simulated seconds")
		return
	}
	fmt.Printf("finished in %.2f simulated seconds\n", float64(doneAt))
	fmt.Printf("max intermediate items: %d (%.0f GB)\n", p.MaxQueueDepth(), float64(p.MaxQueueDepth())*p.ItemSizeGB)
	fmt.Printf("mean intermediate items: %.2f\n", p.MeanQueueDepth())
	if ag != nil {
		fmt.Printf("agent decisions: %d, commands applied: %d\n", ag.Decisions(), ag.Commands())
	}
	if tr != nil {
		data, err := tr.ChromeJSON()
		if err != nil {
			fmt.Println("trace export failed:", err)
			return
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fmt.Println("trace write failed:", err)
			return
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing)\n", len(tr.Spans())+len(tr.Instants()), *traceOut)
		fmt.Println()
		fmt.Print(tr.Summary())
	}
}
