// Command numabench runs parameterized sweeps of the co-scheduling
// benchmark — the full evaluation grid behind the paper's Table III —
// and prints aligned tables, bar charts, or CSV for plotting.
//
// Sweeps:
//
//	numabench -sweep allocation   # all uniform per-node allocations of a 4-app mix
//	numabench -sweep ai           # one app's AI swept across the roofline ridge
//	numabench -sweep curve        # the machine's roofline curve
//	numabench -sweep policies     # agent policies on the Table I mix
//	-machine skylake-quad|paper-model
//	-csv                          # CSV instead of a table
//	-sim                          # also run the simulator per point (slower)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/roofline"
	"repro/internal/taskrt"
	"repro/internal/workload"
)

func main() {
	sweep := flag.String("sweep", "allocation", "sweep kind: allocation | ai | curve | policies")
	machineName := flag.String("machine", "paper-model", "machine preset: paper-model | skylake-quad")
	csv := flag.Bool("csv", false, "emit CSV")
	withSim := flag.Bool("sim", false, "also run the simulator per point")
	flag.Parse()

	var m *machine.Machine
	switch *machineName {
	case "paper-model":
		m = machine.PaperModel()
	case "skylake-quad":
		m = machine.SkylakeQuad()
	default:
		fmt.Fprintf(os.Stderr, "numabench: unknown machine %q\n", *machineName)
		os.Exit(2)
	}

	switch *sweep {
	case "allocation":
		sweepAllocations(m, *csv, *withSim)
	case "ai":
		sweepAI(m, *csv)
	case "curve":
		sweepCurve(m, *csv)
	case "policies":
		sweepPolicies(m, *csv)
	default:
		fmt.Fprintf(os.Stderr, "numabench: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

// paperMix is the Table I/II application set scaled to the machine.
func paperMix() []roofline.App {
	return []roofline.App{
		{Name: "mem1", AI: 0.5}, {Name: "mem2", AI: 0.5}, {Name: "mem3", AI: 0.5}, {Name: "comp", AI: 10},
	}
}

func emit(t *metrics.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t)
	}
}

func sweepAllocations(m *machine.Machine, csv, withSim bool) {
	apps := paperMix()
	headers := []string{"mem1", "mem2", "mem3", "comp", "model GFLOPS"}
	if withSim {
		headers = append(headers, "sim GFLOPS")
	}
	t := metrics.NewTable("all full uniform per-node allocations", headers...)
	var best []int
	bestVal := -1.0
	err := roofline.EnumeratePerNodeCounts(m, len(apps), func(counts []int, al roofline.Allocation, r *roofline.Result) bool {
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != m.Nodes[0].Cores {
			return true // only fully-packed allocations
		}
		row := []any{counts[0], counts[1], counts[2], counts[3], r.TotalGFLOPS}
		if withSim {
			s := &core.Scenario{
				Machine: m,
				Apps: []core.AppConfig{
					{Name: "mem1", AI: 0.5}, {Name: "mem2", AI: 0.5},
					{Name: "mem3", AI: 0.5}, {Name: "comp", AI: 10},
				},
				Allocation: al,
			}
			s.Sim.Duration = 0.2
			sim, err := s.RunSim()
			if err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				os.Exit(1)
			}
			row = append(row, sim.TotalGFLOPS)
		}
		t.AddRow(row...)
		if r.TotalGFLOPS > bestVal {
			bestVal, best = r.TotalGFLOPS, counts
		}
		return true
	}, apps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numabench:", err)
		os.Exit(1)
	}
	emit(t, csv)
	if !csv {
		fmt.Printf("best: %v -> %.1f GFLOPS\n", best, bestVal)
	}
}

// sweepAI varies the fourth application's arithmetic intensity across
// the ridge under the even and node-per-app allocations, exposing the
// ranking crossovers.
func sweepAI(m *machine.Machine, csv bool) {
	apps := paperMix()
	nApps := len(apps)
	even, err := roofline.Even(m, nApps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numabench:", err)
		os.Exit(1)
	}
	npa, err := roofline.NodePerApp(m, nApps, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numabench:", err)
		os.Exit(1)
	}
	t := metrics.NewTable("fourth app's AI swept (others fixed at 0.5)",
		"AI", "even GFLOPS", "node-per-app GFLOPS", "winner")
	ai := 0.01
	for ai <= 100 {
		probe := append([]roofline.App(nil), apps...)
		probe[3].AI = ai
		re := roofline.MustEvaluate(m, probe, even)
		rn := roofline.MustEvaluate(m, probe, npa)
		winner := "even"
		if rn.TotalGFLOPS > re.TotalGFLOPS+1e-9 {
			winner = "node-per-app"
		} else if rn.TotalGFLOPS > re.TotalGFLOPS-1e-9 {
			winner = "tie"
		}
		t.AddRow(ai, re.TotalGFLOPS, rn.TotalGFLOPS, winner)
		ai *= 2
	}
	emit(t, csv)
}

// sweepCurve prints the machine's roofline curve as a table or chart.
func sweepCurve(m *machine.Machine, csv bool) {
	pts := roofline.Curve(m, 0.004, 64, 15)
	if csv {
		t := metrics.NewTable("", "ai", "gflops")
		for _, p := range pts {
			t.AddRow(p.AI, p.GFLOPS)
		}
		fmt.Print(t.CSV())
		return
	}
	labels := make([]string, len(pts))
	values := make([]float64, len(pts))
	for i, p := range pts {
		labels[i] = metrics.FormatFloat(p.AI)
		values[i] = p.GFLOPS
	}
	fmt.Print(metrics.BarChart(
		fmt.Sprintf("roofline of %s (ridge at AI=%.3f)", m.Name, roofline.Ridge(m)),
		labels, values, 50))
}

// sweepPolicies runs the Table I application mix under each agent
// policy on the simulator and reports aggregate throughput.
func sweepPolicies(m *machine.Machine, csv bool) {
	type entry struct {
		name string
		pol  func() agent.Policy
	}
	policies := []entry{
		{"none (over-subscribed)", nil},
		{"fair-share option 1", func() agent.Policy { return agent.FairShare{} }},
		{"fair-share option 3", func() agent.Policy { return agent.FairShare{PerNode: true} }},
		{"roofline oracle", func() agent.Policy {
			return &agent.RooflineOptimal{Specs: []agent.AppSpec{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}}
		}},
		{"adaptive roofline", func() agent.Policy { return &agent.AdaptiveRoofline{Warmup: 5} }},
		{"work-conserving", func() agent.Policy { return agent.WorkConserving{} }},
	}
	t := metrics.NewTable("agent policies on the Table I mix (1 simulated second)",
		"policy", "aggregate GFLOPS")
	var labels []string
	var values []float64
	for _, e := range policies {
		gflops := runPolicy(m, e.pol)
		t.AddRow(e.name, gflops)
		labels = append(labels, e.name)
		values = append(values, gflops)
	}
	emit(t, csv)
	if !csv {
		fmt.Print(metrics.BarChart("", labels, values, 40))
	}
}

func runPolicy(m *machine.Machine, mk func() agent.Policy) float64 {
	eng := des.NewEngine(1)
	o := osched.New(eng, osched.Config{Machine: m})
	o.Start()
	ais := []float64{0.5, 0.5, 0.5, 10}
	var rts []*taskrt.Runtime
	var clients []agent.Client
	for _, ai := range ais {
		rt := taskrt.New(o, taskrt.Config{Name: "app", BindMode: taskrt.BindNode})
		(&workload.Continuous{RT: rt, TaskGFlop: 0.02, AI: ai}).Start()
		rts = append(rts, rt)
		clients = append(clients, rt)
	}
	if mk != nil {
		agent.New(o, agent.Config{Period: 10 * des.Millisecond}, mk(), clients...).Start()
	}
	eng.RunUntil(1)
	total := 0.0
	for _, rt := range rts {
		total += rt.Stats().GFlopDone
	}
	return total
}
