package main

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/machine"
)

func TestRunPolicyProducesThroughput(t *testing.T) {
	m := machine.PaperModel()
	over := runPolicy(m, nil)
	if over < 100 {
		t.Errorf("over-subscribed baseline = %.1f GFLOPS, want > 100", over)
	}
	oracle := runPolicy(m, func() agent.Policy {
		return &agent.RooflineOptimal{Specs: []agent.AppSpec{{AI: 0.5}, {AI: 0.5}, {AI: 0.5}, {AI: 10}}}
	})
	if oracle <= over {
		t.Errorf("oracle policy %.1f should beat over-subscription %.1f", oracle, over)
	}
}

func TestRunPolicyDeterministic(t *testing.T) {
	m := machine.PaperModel()
	mk := func() agent.Policy { return agent.FairShare{PerNode: true} }
	if a, b := runPolicy(m, mk), runPolicy(m, mk); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestPaperMix(t *testing.T) {
	apps := paperMix()
	if len(apps) != 4 || apps[3].AI != 10 {
		t.Errorf("paperMix wrong: %+v", apps)
	}
}
