// Command benchdiff compares a fresh benchmark artifact (the JSON map
// written by cmd/benchjson) against a committed baseline and fails when
// the suite regressed:
//
//   - any benchmark present in the baseline is missing from the fresh
//     run (a silently-deleted benchmark would otherwise hide a
//     regression forever), or
//   - any benchmark's fresh ns/op exceeds the baseline by more than
//     -max-regress (default 0.25, i.e. 25%), or
//   - any benchmark's fresh allocs/op exceeds the baseline by more than
//     the same budget — including a zero-alloc baseline growing any
//     allocations at all (the fleet placement hot path is tracked at 0
//     allocs/op; "0 -> 2" is a regression a ns/op ratio can hide).
//
// New benchmarks (fresh-only) and improvements are reported but never
// fail the run. `make bench-guard` wires this against the HEAD-committed
// BENCH_solver.json / BENCH_fleet.json so CI catches perf regressions
// the same way it catches test failures.
//
// Usage:
//
//	benchdiff -baseline BENCH_fleet.base.json -fresh BENCH_fleet.json
//	benchdiff -baseline old.json -fresh new.json -max-regress 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// diffLine is one benchmark's verdict in the comparison report.
type diffLine struct {
	name   string
	detail string
	failed bool
}

// compare evaluates fresh against baseline under the regression budget.
// Every baseline benchmark yields exactly one line; fresh-only
// benchmarks are appended as informational "new" lines.
func compare(baseline, fresh map[string]benchResult, maxRegress float64) []diffLine {
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)

	var lines []diffLine
	for _, n := range names {
		base := baseline[n]
		got, ok := fresh[n]
		if !ok {
			lines = append(lines, diffLine{
				name:   n,
				detail: "MISSING from fresh run (tracked benchmark deleted or filter no longer matches)",
				failed: true,
			})
			continue
		}
		if base.NsPerOp <= 0 {
			lines = append(lines, diffLine{name: n, detail: "baseline ns/op is zero; skipping ratio check"})
			continue
		}
		ratio := got.NsPerOp/base.NsPerOp - 1
		detail := fmt.Sprintf("%.0f -> %.0f ns/op (%+.1f%%)", base.NsPerOp, got.NsPerOp, 100*ratio)
		if ratio > maxRegress {
			lines = append(lines, diffLine{
				name:   n,
				detail: fmt.Sprintf("REGRESSION %s exceeds budget %+.0f%%", detail, 100*maxRegress),
				failed: true,
			})
			continue
		}
		// Allocation gate: a zero-alloc baseline must stay zero-alloc,
		// and a nonzero one gets the same relative budget as ns/op.
		switch {
		case base.AllocsPerOp == 0 && got.AllocsPerOp > 0:
			lines = append(lines, diffLine{
				name:   n,
				detail: fmt.Sprintf("ALLOC REGRESSION 0 -> %.0f allocs/op (zero-alloc path lost)", got.AllocsPerOp),
				failed: true,
			})
			continue
		case base.AllocsPerOp > 0 && got.AllocsPerOp/base.AllocsPerOp-1 > maxRegress:
			lines = append(lines, diffLine{
				name: n,
				detail: fmt.Sprintf("ALLOC REGRESSION %.0f -> %.0f allocs/op exceeds budget %+.0f%%",
					base.AllocsPerOp, got.AllocsPerOp, 100*maxRegress),
				failed: true,
			})
			continue
		}
		lines = append(lines, diffLine{name: n, detail: detail})
	}

	extra := make([]string, 0)
	for n := range fresh {
		if _, ok := baseline[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		lines = append(lines, diffLine{
			name:   n,
			detail: fmt.Sprintf("new benchmark: %.0f ns/op", fresh[n].NsPerOp),
		})
	}
	return lines
}

func loadResults(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]benchResult
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchmark JSON (benchjson output)")
	freshPath := flag.String("fresh", "", "freshly-measured benchmark JSON to check")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated ns/op regression as a fraction (0.25 = 25%)")
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		flag.Usage()
		os.Exit(2)
	}

	baseline, err := loadResults(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fresh, err := loadResults(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	failed := 0
	for _, line := range compare(baseline, fresh, *maxRegress) {
		mark := "ok  "
		if line.failed {
			mark = "FAIL"
			failed++
		}
		fmt.Printf("%s %-40s %s\n", mark, line.name, line.detail)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) failed against %s (budget %+.0f%%)\n",
			failed, *baselinePath, 100**maxRegress)
		os.Exit(1)
	}
}
