package main

import (
	"strings"
	"testing"
)

func results(pairs ...any) map[string]benchResult {
	m := map[string]benchResult{}
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i].(string)] = benchResult{NsPerOp: pairs[i+1].(float64)}
	}
	return m
}

func failures(lines []diffLine) []diffLine {
	var out []diffLine
	for _, l := range lines {
		if l.failed {
			out = append(out, l)
		}
	}
	return out
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := results("BenchmarkA", 1000.0, "BenchmarkB", 2000.0)
	// +20% and an improvement: both inside the 25% budget.
	fresh := results("BenchmarkA", 1200.0, "BenchmarkB", 500.0)
	if got := failures(compare(base, fresh, 0.25)); len(got) != 0 {
		t.Fatalf("expected no failures, got %v", got)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := results("BenchmarkA", 1000.0)
	fresh := results("BenchmarkA", 1300.0)
	got := failures(compare(base, fresh, 0.25))
	if len(got) != 1 {
		t.Fatalf("expected 1 failure, got %v", got)
	}
	if !strings.Contains(got[0].detail, "REGRESSION") {
		t.Errorf("failure should name the regression: %q", got[0].detail)
	}
}

func TestCompareExactBudgetBoundaryPasses(t *testing.T) {
	base := results("BenchmarkA", 1000.0)
	fresh := results("BenchmarkA", 1250.0)
	if got := failures(compare(base, fresh, 0.25)); len(got) != 0 {
		t.Fatalf("+25%% is the budget, not past it; got %v", got)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := results("BenchmarkA", 1000.0, "BenchmarkGone", 500.0)
	fresh := results("BenchmarkA", 1000.0)
	got := failures(compare(base, fresh, 0.25))
	if len(got) != 1 || got[0].name != "BenchmarkGone" {
		t.Fatalf("expected BenchmarkGone to fail as missing, got %v", got)
	}
	if !strings.Contains(got[0].detail, "MISSING") {
		t.Errorf("failure should say missing: %q", got[0].detail)
	}
}

func TestCompareNewBenchmarkIsInformational(t *testing.T) {
	base := results("BenchmarkA", 1000.0)
	fresh := results("BenchmarkA", 1000.0, "BenchmarkNew", 9999.0)
	lines := compare(base, fresh, 0.25)
	if got := failures(lines); len(got) != 0 {
		t.Fatalf("new benchmarks must not fail, got %v", got)
	}
	found := false
	for _, l := range lines {
		if l.name == "BenchmarkNew" && strings.Contains(l.detail, "new benchmark") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new benchmark should be reported: %v", lines)
	}
}

func TestCompareZeroBaselineSkipsRatio(t *testing.T) {
	base := results("BenchmarkZero", 0.0)
	fresh := results("BenchmarkZero", 123456.0)
	if got := failures(compare(base, fresh, 0.25)); len(got) != 0 {
		t.Fatalf("zero baseline must not divide or fail, got %v", got)
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := results("BenchmarkB", 1.0, "BenchmarkA", 1.0)
	fresh := results("BenchmarkB", 1.0, "BenchmarkA", 1.0, "BenchmarkZNew", 1.0, "BenchmarkCNew", 1.0)
	lines := compare(base, fresh, 0.25)
	want := []string{"BenchmarkA", "BenchmarkB", "BenchmarkCNew", "BenchmarkZNew"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d: %v", len(lines), len(want), lines)
	}
	for i, l := range lines {
		if l.name != want[i] {
			t.Fatalf("line %d = %q, want %q", i, l.name, want[i])
		}
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkZeroAlloc": {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkSomeAlloc": {NsPerOp: 1000, AllocsPerOp: 8},
	}

	// A zero-alloc baseline growing any allocations fails, even with
	// ns/op comfortably inside the budget.
	fresh := map[string]benchResult{
		"BenchmarkZeroAlloc": {NsPerOp: 1000, AllocsPerOp: 2},
		"BenchmarkSomeAlloc": {NsPerOp: 1000, AllocsPerOp: 8},
	}
	got := failures(compare(base, fresh, 0.25))
	if len(got) != 1 || got[0].name != "BenchmarkZeroAlloc" {
		t.Fatalf("expected BenchmarkZeroAlloc to fail, got %v", got)
	}
	if !strings.Contains(got[0].detail, "ALLOC REGRESSION") {
		t.Errorf("failure should name the alloc regression: %q", got[0].detail)
	}

	// Nonzero baselines get the relative budget: +25% passes, more fails.
	fresh = map[string]benchResult{
		"BenchmarkZeroAlloc": {NsPerOp: 1000, AllocsPerOp: 0},
		"BenchmarkSomeAlloc": {NsPerOp: 1000, AllocsPerOp: 10},
	}
	if got := failures(compare(base, fresh, 0.25)); len(got) != 0 {
		t.Fatalf("+25%% allocs is the budget, not past it; got %v", got)
	}
	fresh["BenchmarkSomeAlloc"] = benchResult{NsPerOp: 1000, AllocsPerOp: 11}
	got = failures(compare(base, fresh, 0.25))
	if len(got) != 1 || !strings.Contains(got[0].detail, "ALLOC REGRESSION") {
		t.Fatalf("expected a relative alloc regression, got %v", got)
	}

	// An alloc improvement never fails.
	fresh["BenchmarkSomeAlloc"] = benchResult{NsPerOp: 1000, AllocsPerOp: 1}
	if got := failures(compare(base, fresh, 0.25)); len(got) != 0 {
		t.Fatalf("alloc improvement must not fail, got %v", got)
	}
}
