// Command fleetsim replays the trace-driven fleet stress corpus: each
// scenario boots real in-process coopd members (plain or HA pairs)
// behind a fault-injecting network, drives the fleet
// Inventory/Placer/Rebalancer round by round from the trace, and
// checks the stability invariants (exactly-once, bounded-churn,
// no-oscillation, convergence) after every round.
//
// Usage:
//
//	fleetsim                           # run the checked-in corpus
//	fleetsim -run flapping             # one scenario by name
//	fleetsim -run diurnal,partition_flap  # a comma-separated subset
//	fleetsim -dir ./my-scenarios       # external scenario directory
//	fleetsim -out verdicts.json -v     # write the verdict artifact
//
// Exit status is 0 when every scenario passes its invariants, 1 when
// any fails, and 2 for a usage error — e.g. -run naming an unknown
// scenario, which also prints the available scenario names. -out writes
// the machine-readable verdicts on 0 and 1 either way, so CI can upload
// the artifact from failed runs too.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleetsim"
)

func main() {
	dir := flag.String("dir", "", "load scenarios from this directory instead of the checked-in corpus")
	run := flag.String("run", "", "run only these scenarios (comma-separated names)")
	out := flag.String("out", "", "write the verdicts as JSON to this file (\"-\": stdout)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-scenario wall-clock budget")
	verbose := flag.Bool("v", false, "log every engine decision, not just verdict summaries")
	flag.Parse()

	var (
		scenarios []*fleetsim.Scenario
		err       error
	)
	if *dir != "" {
		scenarios, err = fleetsim.LoadDir(*dir)
	} else {
		scenarios, err = fleetsim.Corpus()
	}
	if err != nil {
		log.Fatalf("fleetsim: %v", err)
	}
	scenarios, err = fleetsim.Filter(scenarios, *run)
	if err != nil {
		// Exit 2, not 1: a selection error is a usage mistake (typo'd
		// scenario name), distinct from scenarios failing invariants.
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var logf func(format string, args ...any)
	if *verbose {
		logf = log.Printf
	}

	verdicts := make([]*fleetsim.Verdict, 0, len(scenarios))
	failed := 0
	for _, sc := range scenarios {
		runCtx, cancelRun := context.WithTimeout(ctx, *timeout)
		v, err := fleetsim.RunScenario(runCtx, sc, fleetsim.EngineConfig{Logf: logf})
		cancelRun()
		if err != nil {
			log.Fatalf("fleetsim: scenario %s: %v", sc.Name, err)
		}
		verdicts = append(verdicts, v)
		status := "PASS"
		if !v.Passed {
			status = "FAIL"
			failed++
		}
		log.Printf("%s %-18s seed=%d rounds=%d moves=%d (max %d/round, %d deferred) agg=%.1f GFLOPS %.1f rounds/sec",
			status, sc.Name, v.Seed, v.Rounds, v.TotalMoves, v.MaxRoundMoves, v.Deferred, v.FinalAggregateGFLOPS, v.RoundsPerSec)
		for _, viol := range v.Violations {
			log.Printf("  round %d [%s]: %s", viol.Round, viol.Invariant, viol.Detail)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(verdicts, "", "  ")
		if err != nil {
			log.Fatalf("fleetsim: encoding verdicts: %v", err)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("fleetsim: writing %s: %v", *out, err)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: %d of %d scenarios failed invariants\n", failed, len(verdicts))
		os.Exit(1)
	}
	log.Printf("fleetsim: %d scenarios passed", len(verdicts))
}
