// Command paperrepro regenerates every table and figure of the paper
// "NUMA-aware CPU core allocation in cooperating dynamic applications"
// (Dokulil & Benkner) and prints paper-vs-reproduction comparisons.
//
// Usage:
//
//	paperrepro                  # everything
//	paperrepro -table 1         # Table I worked example
//	paperrepro -table 2         # Table II worked example
//	paperrepro -table 3         # Table III model vs simulation
//	paperrepro -figure 2        # Fig. 2 allocation scenarios
//	paperrepro -figure 3        # Fig. 3 NUMA-bad ranking reversal
//	paperrepro -stream          # STREAM-style bandwidth probe
//	paperrepro -duration 0.5    # simulated seconds per measurement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/osched"
	"repro/internal/roofline"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "print only this figure (2 or 3)")
	stream := flag.Bool("stream", false, "print only the STREAM probe")
	curve := flag.Bool("curve", false, "print only the roofline curve of the calibrated machine")
	duration := flag.Float64("duration", 1.0, "simulated seconds per measurement")
	flag.Parse()

	all := *table == 0 && *figure == 0 && !*stream && !*curve
	if *table == 1 || all {
		printWorked("Table I — uneven allocation (1,1,1,5), paper total: 254 GFLOPS", []int{1, 1, 1, 5})
	}
	if *table == 2 || all {
		printWorked("Table II — even allocation (2,2,2,2), paper total: 140 GFLOPS", []int{2, 2, 2, 2})
	}
	if *figure == 2 || all {
		printFig2()
	}
	if *figure == 3 || all {
		printFig3()
	}
	if *table == 3 || all {
		printTableIII(des.Time(*duration))
	}
	if *stream || all {
		printSTREAM()
	}
	if *curve || all {
		printCurve()
	}
}

func printCurve() {
	m := machine.SkylakeQuad()
	fmt.Printf("== Roofline curve of the calibrated machine (ridge at AI = %.3f FLOP/byte)\n",
		roofline.Ridge(m))
	t := metrics.NewTable("", "AI (FLOP/byte)", "GFLOPS", "regime")
	for _, p := range roofline.Curve(m, 0.004, 4, 13) {
		regime := "bandwidth-bound"
		if p.AI >= roofline.Ridge(m) {
			regime = "compute-bound"
		}
		t.AddRow(p.AI, p.GFLOPS, regime)
	}
	fmt.Println(t)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paperrepro:", err)
	os.Exit(1)
}

// printWorked reproduces the step-by-step derivations of Tables I/II.
func printWorked(title string, counts []int) {
	m := machine.PaperModel()
	apps := []roofline.App{
		{Name: "mem-bound", AI: 0.5}, {Name: "mem-bound", AI: 0.5},
		{Name: "mem-bound", AI: 0.5}, {Name: "comp-bound", AI: 10},
	}
	tab, err := roofline.Worked(m, apps, counts)
	if err != nil {
		fail(err)
	}
	fmt.Println("==", title)
	fmt.Println(tab)
}

func printFig2() {
	fmt.Println("== Figure 2 — the three allocation scenarios (model machine 4x8, 10 GFLOPS/core, 32 GB/s/node)")
	names := []string{"a) uneven (1,1,1,5)", "b) even (2,2,2,2)", "c) one node per app"}
	paper := []float64{254, 140, 128}
	t := metrics.NewTable("", "scenario", "paper GFLOPS", "model GFLOPS")
	for i, s := range core.Fig2Scenarios() {
		r, err := s.RunModel()
		if err != nil {
			fail(err)
		}
		t.AddRow(names[i], paper[i], r.TotalGFLOPS)
	}
	fmt.Println(t)
}

func printFig3() {
	fmt.Println("== Figure 3 — NUMA-bad application reverses the ranking (60 GB/s nodes, 10 GB/s links)")
	even, npa := core.Fig3Scenarios()
	re, err := even.RunModel()
	if err != nil {
		fail(err)
	}
	rn, err := npa.RunModel()
	if err != nil {
		fail(err)
	}
	t := metrics.NewTable("", "scenario", "paper GFLOPS", "model GFLOPS")
	t.AddRow("even (2,2,2,2), bad app homed on node 0", 138.0, re.TotalGFLOPS)
	t.AddRow("one node per app, bad app on its home node", 150.0, rn.TotalGFLOPS)
	fmt.Println(t)
	fmt.Println("ranking reversal reproduced:", rn.TotalGFLOPS > re.TotalGFLOPS)
	fmt.Println()
}

func printTableIII(duration des.Time) {
	fmt.Println("== Table III — model vs synthetic benchmark (Skylake 4x20, 100 GB/s/node, 0.29 GFLOPS/thread)")
	t := metrics.NewTable("", "scenario", "paper model", "paper real", "our model", "our simulated")
	for _, row := range core.TableIIIScenarios() {
		row.Scenario.Sim.Duration = duration
		cmp, err := row.Scenario.Run(row.Name)
		if err != nil {
			fail(err)
		}
		t.AddRow(row.Name, row.PaperModel, row.PaperReal, cmp.Model.TotalGFLOPS, cmp.Sim.TotalGFLOPS)
	}
	fmt.Println(t)
}

func printSTREAM() {
	fmt.Println("== STREAM-style probe of the simulated Skylake machine (measured GB/s)")
	m := machine.SkylakeQuad()
	res := streamProbe(m)
	t := metrics.NewTable("", "from \\ to", "node 0", "node 1", "node 2", "node 3")
	for i, row := range res {
		cells := make([]any, 0, 5)
		cells = append(cells, fmt.Sprintf("node %d", i))
		for _, v := range row {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	fmt.Println(t)
}

func streamProbe(m *machine.Machine) [][]float64 {
	// Inline probe to keep the dependency on calibrate optional here.
	out := make([][]float64, m.NumNodes())
	for src := range out {
		out[src] = make([]float64, m.NumNodes())
		for dst := range out[src] {
			eng := des.NewEngine(7)
			o := osched.New(eng, osched.Config{
				Machine:           m,
				ContextSwitchCost: -1,
				MigrationPenalty:  -1,
				LoadBalancePeriod: -1,
			})
			o.Start()
			p := o.NewProcess("stream")
			memNode := machine.NodeID(dst)
			for _, c := range m.CoresOfNode(machine.NodeID(src)) {
				p.NewThread("s", osched.RunnerFunc(func(*osched.Thread) osched.Work {
					return osched.Work{Kind: osched.WorkCompute, GFlop: 1e9, AI: 1.0 / 1024, MemNode: memNode}
				}), osched.SingleCore(m, c))
			}
			eng.RunUntil(0.05)
			out[src][dst] = p.GFlopDone() * 1024 / 0.05
		}
	}
	return out
}
