// Command benchjson converts `go test -bench` output on stdin into a
// JSON map on stdout: benchmark name -> {ns_per_op, bytes_per_op,
// allocs_per_op}. The raw stream is echoed to stderr so terminal output
// and CI logs keep the familiar textual form while the JSON artifact
// (BENCH_solver.json in `make bench`) tracks the perf trajectory
// PR-over-PR.
//
// Benchmark lines look like
//
//	BenchmarkAllocateCold-8  71784  17092 ns/op  18305 B/op  223 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so keys stay stable across
// machines. Benchmarks run more than once (e.g. -count) keep the last
// measurement.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	results := map[string]benchResult{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		name, res, ok := parseBenchLine(line)
		if ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	// Deterministic key order for reviewable diffs.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]benchResult, len(results))
	for _, n := range names {
		ordered[n] = results[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: writing json: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine extracts one benchmark measurement; ok is false for
// non-benchmark lines (headers, PASS/ok trailers, test chatter).
func parseBenchLine(line string) (string, benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", benchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var res benchResult
	seen := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	if !seen {
		return "", benchResult{}, false
	}
	return name, res, true
}
