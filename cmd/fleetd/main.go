// Command fleetd runs the fleet placement daemon: it tracks a set of
// coopd-backed NUMA machines, places incoming applications on the
// machine where they add the most aggregate GFLOPS (roofline marginal
// scoring, NUMA-bad anti-affinity), and rebalances when machines die,
// drain, or the fleet drifts from its optimal packing.
//
// Usage:
//
//	fleetd -machine a=http://host-a:8377 -machine b=http://host-b:8377
//	fleetd -machine ha=http://a1:8377,http://a2:8377   # HA pair, one member
//	fleetd -machine a@rack1=http://host-a:8377         # failure domain rack1
//	fleetd -addr :8380 -rebalance 10s -max-moves 4 -threshold 0.9
//	fleetd -spread -storm-fraction 0.25 -flap-count 4  # robustness knobs
//	fleetd -objective weighted-priority -no-preempt    # priority knobs
//
// Endpoints: POST /v1/fleet/place, POST /v1/fleet/gang,
// GET /v1/fleet/machines, GET /v1/fleet/plan, POST /v1/fleet/drain,
// POST+GET /v1/fleet/upgrade, GET /healthz. See `coopctl fleet` for
// the CLI.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

// memberFlag collects repeated -machine flags: "id[@domain]=url[,url2]".
type memberFlag struct {
	ids       []string
	domains   []string
	endpoints [][]string
}

func (f *memberFlag) String() string { return fmt.Sprint(f.ids) }

func (f *memberFlag) Set(v string) error {
	id, urls, ok := strings.Cut(v, "=")
	if !ok || id == "" || urls == "" {
		return fmt.Errorf("want id[@domain]=url[,url2], got %q", v)
	}
	// "a@rack1" groups the machine into failure domain rack1; without
	// the suffix every machine is its own domain.
	id, domain, _ := strings.Cut(id, "@")
	if id == "" {
		return fmt.Errorf("want id[@domain]=url[,url2], got %q", v)
	}
	var eps []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			eps = append(eps, u)
		}
	}
	if len(eps) == 0 {
		return fmt.Errorf("member %s has no endpoints", id)
	}
	f.ids = append(f.ids, id)
	f.domains = append(f.domains, domain)
	f.endpoints = append(f.endpoints, eps)
	return nil
}

func main() {
	var members memberFlag
	addr := flag.String("addr", ":8380", "listen address")
	flag.Var(&members, "machine", "member machine as id=coopd-url[,coopd-url2] (repeatable; several URLs = one HA pair)")
	poll := flag.Duration("poll", 2*time.Second, "inventory poll interval")
	rebalance := flag.Duration("rebalance", 10*time.Second, "rebalance round interval")
	failAfter := flag.Int("fail-after", 3, "consecutive failed polls before a machine is declared dead")
	maxMoves := flag.Int("max-moves", 4, "max app moves per rebalance round")
	threshold := flag.Float64("threshold", 0.9, "rebalance when fleet GFLOPS falls below this fraction of the re-pack optimum")
	spread := flag.Bool("spread", false, "spread cooperating app groups across failure domains on score ties")
	objective := flag.String("objective", "", "placement objective: total-gflops (default), weighted-priority, or max-min")
	noPreempt := flag.Bool("no-preempt", false, "disable priority preemption (inversion repair and gang-admission eviction)")
	stormFraction := flag.Float64("storm-fraction", 0, "down-member fraction that trips degraded-mode triage (0: default 0.25)")
	stormBudget := flag.Int("storm-budget", 0, "max urgent moves per degraded round (0: max-moves)")
	admissionCap := flag.Int("admission-cap", 0, "max storm evacuations one survivor admits per round (0: default 2)")
	flapCount := flag.Int("flap-count", 0, "alive<->dead transitions inside the flap window before quarantine (0: default 4, negative: disabled)")
	flapWindow := flag.Duration("flap-window", 0, "flap detector sliding window (0: default 1m)")
	quarantineBackoff := flag.Duration("quarantine-backoff", 0, "first quarantine re-admission backoff, doubling per repeat (0: default 30s)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.Parse()

	if len(members.ids) == 0 {
		log.Fatalf("fleetd: at least one -machine id=url is required")
	}

	inv := fleet.NewInventory(fleet.InventoryConfig{
		FailAfter: *failAfter, FlapCount: *flapCount, FlapWindow: *flapWindow,
		QuarantineBackoff: *quarantineBackoff, Logf: log.Printf,
	})
	for i, id := range members.ids {
		if err := inv.AddDomain(id, members.domains[i], members.endpoints[i]...); err != nil {
			log.Fatalf("fleetd: %v", err)
		}
	}

	srv, err := fleet.NewServer(fleet.ServerConfig{
		Inventory:         inv,
		PollInterval:      *poll,
		RebalanceInterval: *rebalance,
		MaxMovesPerRound:  *maxMoves,
		Threshold:         *threshold,
		DomainSpread:      *spread,
		Objective:         *objective,
		DisablePreemption: *noPreempt,
		StormFraction:     *stormFraction,
		StormBudget:       *stormBudget,
		AdmissionCap:      *admissionCap,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatalf("fleetd: %v", err)
	}

	if *pprofAddr != "" {
		// The pprof handlers live on http.DefaultServeMux; the API below
		// uses its own mux, so the profiler stays off the public port.
		go func() {
			log.Printf("fleetd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("fleetd: pprof server: %v", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    64 << 10,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	srv.Start()
	defer srv.Close()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("fleetd: serving %d machines on %s (poll %s, rebalance %s, max %d moves/round, threshold %.2f)",
		len(members.ids), *addr, *poll, *rebalance, *maxMoves, *threshold)

	select {
	case err := <-errc:
		log.Fatalf("fleetd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("fleetd: shutting down")
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("fleetd: shutdown: %v", err)
	}
}
